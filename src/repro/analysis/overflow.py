"""The lane-overflow prover: upfront safety proofs for packing plans.

A packed dot product issues, per K step, one ``packed_scalar_mul``
(scalar from A times a packed register of B lanes) and one
``packed_add`` into a packed accumulator.  The chain is *exact* iff
every lane's running sum fits its field — the invariant the Fig. 3
guard-bit policy is designed around, which the rest of the library only
verifies at run time (``strict=True``).

This module decides the question statically.  Given a
:class:`~repro.packing.policy.PackingPolicy`, operand ranges (or
bitwidths), a GEMM K depth, and an optional spill chunk depth, the
interval abstract interpreter either

* **proves** no lane of the IMAD chain can overflow its field or the
  32-bit register — for *any* inputs in range — or
* **refutes** the plan with a concrete :class:`OverflowWitness` triple
  ``(scalar, lane value, depth)`` that reproduces the overflow under
  ``strict=True`` execution.

Because lanes occupy ``lanes * field_bits <= 32`` bits, per-lane field
safety implies the packed register cannot wrap either; the prover still
reports the register-level margin separately (``VB102``) because a
wrapped register corrupts *neighbouring* lanes, which is a strictly
worse failure than one saturated field.

Diagnostic codes: ``VB101`` lane-field overflow, ``VB102`` register
overflow, ``VB103`` a single product cannot fit its field, ``VB104``
operands out of packable range, ``VB105`` scalar wider than the
policy's multiplier width (the Fig. 3 sizing guarantee is void),
``VB106`` informational safety margin.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.intervals import Interval
from repro.errors import AnalysisError, OverflowBudgetError, PackingError
from repro.packing.policy import PackingPolicy

__all__ = [
    "OverflowWitness",
    "OverflowProof",
    "prove_packed_accumulation",
    "preflight_gemm",
]

#: Depth reported for plans that can never overflow (0/1-valued operands).
UNBOUNDED_DEPTH = 1 << 30


@dataclass(frozen=True)
class OverflowWitness:
    """A concrete input triple that overflows a lane field.

    Feeding ``scalar`` against a register whose lanes all hold
    ``lane_value``, ``depth`` accumulated products reach ``lane_total``
    in every lane, exceeding ``field_limit`` — so a strict SWAR
    execution raises :class:`~repro.errors.OverflowBudgetError` at
    exactly step ``depth``.
    """

    scalar: int
    lane_value: int
    depth: int
    lane_total: int
    field_limit: int

    def describe(self) -> str:
        """One-line reproduction recipe."""
        return (
            f"scalar={self.scalar} x lane_value={self.lane_value} "
            f"accumulated {self.depth}x reaches {self.lane_total} "
            f"> field limit {self.field_limit}"
        )

    def to_dict(self) -> dict:
        """JSON-ready form for ``--format json`` output."""
        return {
            "scalar": self.scalar,
            "lane_value": self.lane_value,
            "depth": self.depth,
            "lane_total": self.lane_total,
            "field_limit": self.field_limit,
        }


@dataclass
class OverflowProof:
    """Outcome of the lane-overflow prover for one packing plan.

    ``safe`` is a *proof*: no inputs within the declared ranges can
    overflow within ``depth_checked`` accumulations.  When ``safe`` is
    False, ``witness`` is a concrete refutation.  ``max_safe_depth`` is
    the largest accumulation depth the plan supports without spilling
    (the per-(bitwidth, packing-factor) budget of the paper's Sec. 3.2
    guard-bit discussion).
    """

    policy: PackingPolicy
    a_range: Interval
    b_range: Interval
    k: int
    depth_checked: int
    max_safe_depth: int
    safe: bool
    witness: OverflowWitness | None
    diagnostics: list[Diagnostic]

    @property
    def guard_bits_free(self) -> int:
        """Field bits spare beyond one worst-case product (>= 0 when safe)."""
        prod = (self.a_range * self.b_range).hi
        return self.policy.field_bits - max(1, prod).bit_length()

    def describe(self) -> str:
        """One-line verdict summary."""
        plan = (
            f"{self.policy.value_bits}-bit x {self.policy.lanes}-pack "
            f"(field {self.policy.field_bits}, K={self.k}, "
            f"chunk {self.depth_checked})"
        )
        if self.safe:
            return f"SAFE {plan}: max safe depth {self.max_safe_depth}"
        assert self.witness is not None
        return f"OVERFLOW {plan}: {self.witness.describe()}"


def _location(policy: PackingPolicy) -> str:
    return (
        f"policy(bits={policy.value_bits}, lanes={policy.lanes}, "
        f"field={policy.field_bits})"
    )


def prove_packed_accumulation(
    policy: PackingPolicy,
    *,
    k: int,
    a_bits: int | None = None,
    a_range: Interval | None = None,
    b_bits: int | None = None,
    b_range: Interval | None = None,
    chunk_depth: int | None = None,
) -> OverflowProof:
    """Prove or refute lane safety of a packed IMAD accumulation chain.

    Parameters
    ----------
    policy:
        The packing plan under test.
    k:
        GEMM reduction depth — how many products each lane accumulates.
        ``k = 0`` (an empty reduction) is trivially safe: no product is
        ever formed, so every lane stays at zero.
    a_bits / a_range:
        Range of the unpacked multiplier stream, as a magnitude bitwidth
        or an explicit :class:`~repro.analysis.intervals.Interval`
        (default: the policy's ``effective_multiplier_bits``).  Must be
        non-negative — signed multipliers are sign-split upstream.
    b_bits / b_range:
        Range of the packed lane payloads (default: the policy's
        ``value_bits``).
    chunk_depth:
        Accumulation length between spills to wide accumulators.  The
        default (``None``) models *no* spilling — the whole K chain runs
        packed, which is the "run strict and hope" configuration this
        prover replaces.  Pass the planned chunk depth (e.g. from
        :func:`repro.packing.accumulate.safe_accumulation_depth`) to
        verify a chunked execution.

    Returns
    -------
    OverflowProof
        ``safe=True`` with the per-plan depth budget, or ``safe=False``
        with a concrete :class:`OverflowWitness` and ``VB1xx``
        diagnostics.
    """
    if k < 0:
        raise PackingError(f"accumulation depth k must be >= 0, got {k}")
    if chunk_depth is not None and chunk_depth < 1:
        raise PackingError(f"chunk_depth must be >= 1, got {chunk_depth}")
    if a_range is None:
        a_range = Interval.from_bits(
            policy.effective_multiplier_bits if a_bits is None else a_bits
        )
    if b_range is None:
        b_range = Interval.from_bits(
            policy.value_bits if b_bits is None else b_bits
        )
    if not a_range.nonnegative:
        raise PackingError(
            "packed multiplication requires non-negative scalars; "
            "sign-split signed multipliers first (see repro.packing.gemm)"
        )
    loc = _location(policy)
    diags: list[Diagnostic] = []

    # Range sanity: lanes must be packable at all.
    if not b_range.fits(policy.max_value):
        diags.append(
            Diagnostic(
                code="VB104",
                severity=Severity.ERROR,
                message=(
                    f"lane payload range {b_range} exceeds the packable "
                    f"range [0, {policy.max_value}] of "
                    f"{policy.value_bits}-bit lanes"
                ),
                location=loc,
                hint="widen value_bits or offset operands by their zero point",
            )
        )
    asymmetric_widths: dict | None = None
    if (
        policy.lanes > 1
        and a_range.hi > (1 << policy.effective_multiplier_bits) - 1
    ):
        asymmetric_widths = {
            "a_bits_declared": policy.effective_multiplier_bits,
            "a_bits_seen": max(1, a_range.hi).bit_length(),
            "b_bits": max(1, b_range.hi).bit_length(),
            "field_bits": policy.field_bits,
            "lanes": policy.lanes,
        }
        if k > 0 and (a_range * b_range).hi > policy.field_mask:
            # The asymmetric pair refutes the plan outright: report it
            # as a structured, machine-readable diagnostic carrying the
            # offending widths (not a bare exception) so the dataflow
            # cross-check and JSON consumers can act on it.
            diags.append(
                Diagnostic(
                    code="VB107",
                    severity=Severity.ERROR,
                    message=(
                        f"asymmetric operand widths refute the plan: a "
                        f"{asymmetric_widths['a_bits_seen']}x"
                        f"{asymmetric_widths['b_bits']}-bit product cannot "
                        f"fit the policy's {policy.field_bits}-bit fields "
                        f"(sized for {policy.effective_multiplier_bits}-bit "
                        "multipliers)"
                    ),
                    location=loc,
                    hint="derive the layout with "
                    "repro.packing.mixed.policy_for_operands(a_bits, b_bits)",
                    data={"widths": asymmetric_widths},
                )
            )
        else:
            diags.append(
                Diagnostic(
                    code="VB105",
                    severity=Severity.WARNING,
                    message=(
                        f"scalar range {a_range} exceeds the policy's "
                        f"{policy.effective_multiplier_bits}-bit multiplier "
                        "width; the Fig. 3 field sizing no longer guarantees "
                        "single-product fit"
                    ),
                    location=loc,
                    hint="use repro.packing.mixed.policy_for_operands for "
                    "asymmetric widths",
                    data={"widths": asymmetric_widths},
                )
            )

    # Abstract interpretation of the chain.  Every lane starts at 0 and
    # accumulates one product interval per step; all lanes share the
    # same abstract state (the packer may place any in-range payload in
    # any lane), so one interval models all of them.
    product = a_range * b_range
    depth_checked = min(k, chunk_depth) if chunk_depth is not None else k
    field_limit = policy.field_mask

    if product.hi <= 0:
        max_safe_depth = UNBOUNDED_DEPTH
    else:
        max_safe_depth = field_limit // product.hi

    lane_after = product.scale(depth_checked)
    safe = lane_after.fits(field_limit) and not any(
        d.severity is Severity.ERROR for d in diags
    )

    witness: OverflowWitness | None = None
    if not lane_after.fits(field_limit):
        # Smallest depth at which the worst-case inputs overflow; by
        # construction <= depth_checked, so the witness is realizable
        # within the plan being checked.
        fail_depth = max_safe_depth + 1
        witness = OverflowWitness(
            scalar=a_range.hi,
            lane_value=b_range.hi,
            depth=fail_depth,
            lane_total=product.hi * fail_depth,
            field_limit=field_limit,
        )
        if max_safe_depth == 0:
            diags.append(
                Diagnostic(
                    code="VB103",
                    severity=Severity.ERROR,
                    message=(
                        f"a single worst-case product ({a_range.hi} x "
                        f"{b_range.hi} = {product.hi}) does not fit the "
                        f"{policy.field_bits}-bit field"
                    ),
                    location=loc,
                    hint="reduce operand bitwidths or pack fewer lanes "
                    "(wider fields)",
                    data={"witness": witness.to_dict()},
                )
            )
        else:
            diags.append(
                Diagnostic(
                    code="VB101",
                    severity=Severity.ERROR,
                    message=(
                        f"lane overflow at accumulation depth "
                        f"{witness.depth} of {depth_checked}: "
                        f"{witness.describe()}"
                    ),
                    location=loc,
                    hint=(
                        f"spill to wide accumulators every "
                        f"{max_safe_depth} products "
                        "(repro.packing.accumulate.ChunkedAccumulator)"
                    ),
                    data={"witness": witness.to_dict()},
                )
            )
        # Register-level wrap: strictly worse — the carry corrupts the
        # neighbouring lane's payload rather than saturating one field.
        top_shift = (policy.lanes - 1) * policy.field_bits
        reg_limit = (1 << policy.register_bits) - 1
        total_hi = sum(
            witness.lane_total << s for s in policy.shift_amounts
        )
        if total_hi > reg_limit or (witness.lane_total << top_shift) > reg_limit:
            diags.append(
                Diagnostic(
                    code="VB102",
                    severity=Severity.ERROR,
                    message=(
                        f"worst-case packed value {total_hi} exceeds the "
                        f"{policy.register_bits}-bit register; the hardware "
                        "IMAD would wrap and corrupt neighbouring lanes"
                    ),
                    location=loc,
                )
            )
    else:
        margin = (
            "unbounded"
            if max_safe_depth >= UNBOUNDED_DEPTH
            else f"{max_safe_depth - depth_checked} further products"
        )
        diags.append(
            Diagnostic(
                code="VB106",
                severity=Severity.INFO,
                message=(
                    f"proved safe for depth {depth_checked} (budget "
                    f"{max_safe_depth}; margin {margin})"
                ),
                location=loc,
            )
        )

    return OverflowProof(
        policy=policy,
        a_range=a_range,
        b_range=b_range,
        k=k,
        depth_checked=depth_checked,
        max_safe_depth=int(max_safe_depth),
        safe=safe,
        witness=witness,
        diagnostics=diags,
    )


def preflight_gemm(
    policy: PackingPolicy, a_bits: int, k: int
) -> OverflowProof:
    """Pre-flight proof for a chunked packed GEMM, run on **two** provers.

    Called by :func:`repro.packing.gemm.packed_gemm_unsigned` (and
    transitively by :func:`repro.kernels.fused_gemm.fused_gemm`) before
    any data is packed.  The verdict comes from the lane **dataflow
    verifier** (:func:`repro.analysis.dataflow.prove_chain` over the
    actual chain program); the closed-form interval prover this module
    implements runs as a differential cross-check — any disagreement in
    verdict or depth budget is a ``VB401``
    :class:`~repro.errors.AnalysisError`, because it means one of the
    provers is unsound.

    Raises :class:`~repro.errors.OverflowBudgetError` carrying the
    witness when no safe chunk depth exists at all.  Results are
    memoized per ``(policy, a_bits, k)``: the serve preflight calls this
    on the admission hot path.
    """
    return _preflight_cached(policy, a_bits, k)


@functools.lru_cache(maxsize=4096)
def _preflight_cached(
    policy: PackingPolicy, a_bits: int, k: int
) -> OverflowProof:
    from repro.analysis import dataflow

    probe = prove_packed_accumulation(policy, k=k, a_bits=a_bits)
    flow = dataflow.prove_chain(policy, k=k, a_bits=a_bits)
    loc = _location(policy)

    # Differential cross-check: the two provers must agree on both the
    # unchunked verdict and the maximum safe accumulation depth.
    if flow.safe != probe.safe or (
        k > 0 and flow.max_safe_depth != probe.max_safe_depth
    ):
        diag = Diagnostic(
            code="VB401",
            severity=Severity.ERROR,
            message=(
                "prover disagreement: dataflow says "
                f"safe={flow.safe} depth={flow.max_safe_depth}, interval "
                f"prover says safe={probe.safe} "
                f"depth={probe.max_safe_depth} for a_bits={a_bits}, k={k}"
            ),
            location=loc,
        )
        probe.diagnostics.append(diag)
        raise AnalysisError(f"VB401 [{loc}]: {diag.message}")

    if k == 0:
        # An empty reduction accumulates nothing: trivially safe even
        # when no depth-1 chunk would be (probe.safe is True above).
        return probe
    if probe.max_safe_depth < 1:
        assert probe.witness is not None
        raise OverflowBudgetError(
            "packing plan refuted before execution: "
            + probe.witness.describe()
            + f" [{loc}]"
        )
    # The executed spill cadence: the dataflow-proven depth (consults
    # the safe-depth table when one is installed, and cross-checks the
    # closed form again — VB402 on mismatch).
    chunk = min(dataflow.proven_chunk_depth(policy, a_bits), k)
    proof = prove_packed_accumulation(
        policy, k=k, a_bits=a_bits, chunk_depth=chunk
    )
    if not proof.safe:  # pragma: no cover - unreachable once chunked
        assert proof.witness is not None
        raise OverflowBudgetError(
            "packing plan refuted before execution: "
            + proof.witness.describe()
        )
    chain = dataflow.prove_chain(policy, k=k, a_bits=a_bits, chunk_depth=chunk)
    if not chain.safe:  # pragma: no cover - unreachable once chunked
        raise OverflowBudgetError(
            "packing plan refuted before execution: " + chain.describe()
        )
    proof.diagnostics.append(
        Diagnostic(
            code="VB116",
            severity=Severity.INFO,
            message=(
                f"dataflow verifier concurs: chunked chain (spill every "
                f"{chunk}) proved safe over "
                f"{chain.program.flat_size()} IR ops"
            ),
            location=loc,
        )
    )
    return proof
