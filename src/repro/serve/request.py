"""Request and result types for the batched inference service.

A request names *what* to infer (model, activation bitwidth) and *how
urgently* (a :class:`~repro.fusion.qos.QosClass` carrying the deadline
and slowdown budget).  Mixed-bitwidth streams are first-class: the
batcher only groups requests whose (model, bits) agree, since the
packing policy — and therefore the fused kernel — differs per bitwidth.

Every submitted request resolves to exactly one :class:`RequestResult`;
the service never lets an internal error escape to the submitter —
failures surface as ``FAILED`` results with the error text in
``detail``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.fusion.qos import STANDARD, QosClass

__all__ = ["RequestStatus", "InferenceRequest", "RequestResult"]


class RequestStatus(enum.Enum):
    """Terminal state of one request."""

    #: Served to completion within its deadline.
    COMPLETED = "completed"
    #: Refused at admission (queue full or deadline already infeasible).
    REJECTED = "rejected"
    #: Admitted but its deadline passed before/while being served.
    EXPIRED = "expired"
    #: An internal error exhausted the retry budget.
    FAILED = "failed"
    #: Withdrawn while queued (e.g. a hedged duplicate whose twin won).
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class InferenceRequest:
    """One inference to serve.

    ``bits`` is the activation bitwidth of the requested model variant;
    it selects the packing policy (Fig. 3) and thereby which fused
    kernel the batch compiles to.  ``deadline_seconds`` overrides the
    QoS class default when set.
    """

    request_id: int
    model: str = "vit-base"
    bits: int = 8
    qos: QosClass = STANDARD
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ServeError(f"bits must be in 1..32, got {self.bits}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ServeError("deadline_seconds must be positive")

    @property
    def deadline(self) -> float:
        """Relative deadline in seconds (class default unless overridden)."""
        return (
            self.deadline_seconds
            if self.deadline_seconds is not None
            else self.qos.deadline_seconds
        )

    def batch_key(self) -> tuple:
        """Requests sharing this key may be served in one batch."""
        return (self.model, self.bits)


@dataclass
class RequestResult:
    """Terminal outcome of one request, as seen by the submitter."""

    request_id: int
    status: RequestStatus
    qos: str = "standard"
    latency_seconds: float = 0.0
    strategy: str = ""
    #: True when the fused path was refuted and the batch was served by
    #: the degraded (Tensor-only / single-pipe) baseline instead.
    fallback: bool = False
    batch_size: int = 0
    retries: int = 0
    detail: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the request was actually served."""
        return self.status is RequestStatus.COMPLETED
