"""Bounded admission queue with backpressure.

The service's front door: a FIFO of pending requests with a hard
capacity.  When the queue is full, :meth:`BoundedRequestQueue.put_nowait`
raises :class:`~repro.errors.AdmissionError` — the backpressure signal
the admission layer converts into a ``REJECTED`` result instead of
letting an unbounded backlog grow until every deadline is dead on
arrival (load shedding beats queueing collapse).

Consumers (the batch workers) block on :meth:`get`; the batcher then
peeks the remaining queue for batch-compatible requests with
:meth:`peek_matching` and removes the chosen ones with :meth:`take`,
preserving FIFO order for everything left behind.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Iterable, TypeVar

from repro import obs
from repro.errors import AdmissionError, ServeError
from repro.serve.clock import Clock

__all__ = ["BoundedRequestQueue"]

T = TypeVar("T")


class BoundedRequestQueue:
    """A bounded FIFO of pending work, tied to the serving clock."""

    def __init__(self, capacity: int, clock: Clock):
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._items: deque = deque()
        self._getters: deque[asyncio.Future] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def full(self) -> bool:
        """True when the next put would be rejected."""
        return len(self._items) >= self.capacity

    def put_nowait(self, item: T) -> None:
        """Enqueue or raise :class:`AdmissionError` when at capacity."""
        if self._closed:
            raise ServeError("queue is closed")
        if self.full:
            raise AdmissionError(
                f"queue full ({self.capacity} pending requests); "
                "backpressure — retry later or shed load"
            )
        self._items.append(item)
        self._publish_depth()
        self._clock.touch()
        self._wake_one()

    async def get(self) -> T | None:
        """Next item in FIFO order; ``None`` once closed and drained."""
        while True:
            if self._items:
                item = self._items.popleft()
                self._publish_depth()
                self._clock.touch()
                return item
            if self._closed:
                return None
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            self._getters.append(fut)
            await fut

    def peek_matching(
        self, pred: Callable[[T], bool], limit: int
    ) -> list[T]:
        """Up to ``limit`` queued items satisfying ``pred`` (FIFO order,
        not removed)."""
        out: list[T] = []
        for item in self._items:
            if len(out) >= limit:
                break
            if pred(item):
                out.append(item)
        return out

    def take(self, items: Iterable[T]) -> None:
        """Remove specific items (previously peeked) from the queue."""
        chosen = {id(x) for x in items}
        kept = deque(x for x in self._items if id(x) not in chosen)
        removed = len(self._items) - len(kept)
        if removed != len(chosen):
            raise ServeError("take() got items that are not queued")
        self._items = kept
        if removed:
            self._publish_depth()
            self._clock.touch()

    def remove_first(self, pred: Callable[[T], bool]) -> T | None:
        """Remove and return the first queued item satisfying ``pred``.

        Returns ``None`` when nothing matches; FIFO order of the rest is
        preserved.  Used to withdraw a hedged duplicate that lost its
        race before it wastes a batch slot.
        """
        for item in self._items:
            if pred(item):
                self._items.remove(item)
                self._publish_depth()
                self._clock.touch()
                return item
        return None

    def drain(self) -> list:
        """Remove and return every queued item (crash/abort recovery)."""
        items = list(self._items)
        self._items.clear()
        if items:
            self._publish_depth()
            self._clock.touch()
        return items

    def close(self) -> None:
        """Stop accepting work and wake every blocked consumer."""
        self._closed = True
        self._clock.touch()
        while self._getters:
            fut = self._getters.popleft()
            if not fut.done():
                fut.set_result(None)

    def _publish_depth(self) -> None:
        """Publish the current depth and its high-water histogram."""
        depth = len(self._items)
        obs.gauge(
            "serve_queue_depth", "pending requests in the admission queue"
        ).set(depth)
        obs.histogram(
            "serve_queue_depth_observed",
            "admission-queue depth at each enqueue/dequeue",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128),
        ).observe(depth)

    def _wake_one(self) -> None:
        while self._getters:
            fut = self._getters.popleft()
            if not fut.done():
                fut.set_result(None)
                return
