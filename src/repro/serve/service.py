"""The asyncio batched inference service.

One :class:`InferenceService` models one serving replica group in
front of the simulated GPU: requests enter through admission control
into a bounded queue, batch workers pull compatible groups, a
:class:`~repro.serve.batcher.BatchPlanner` sizes each batch via the
performance model, and the batch "executes" by advancing the serving
clock by the priced service time.

Request lifecycle
-----------------
``submit`` → admission (reject on full queue or a deadline no solo
batch could meet) → queued → batched → preflight → execute → resolve.
Every submitted request resolves to exactly one
:class:`~repro.serve.request.RequestResult`; internal errors become
``FAILED`` results after the retry budget, never exceptions at the
submitter.

Graceful degradation
--------------------
Before a (model, bitwidth) pair is first served on the fused path, the
service runs :func:`~repro.vit.runtime.preflight_strategy`: the
overflow prover must certify the packing plan and the split must
lower.  A refutation — including the fault-injection hook
``ServeConfig.inject_refute_bits`` used by tests and CI — does not fail
the request: the batch is served by the strategy's
:meth:`~repro.fusion.strategies.Strategy.degraded` baseline (Tensor
cores only, for VitBit) and the fallback is counted per request and
per batch.  Inapplicable Tensor:CUDA split *rules* degrade milder
still: the clamped m = 1 split, counted in :attr:`ratio_clamps`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro import obs
from repro.arch.specs import MachineSpec
from repro.errors import (
    AdmissionError,
    OverflowBudgetError,
    PackingError,
    ReproError,
    ScheduleError,
    ServeError,
)
from repro.fusion.strategies import VITBIT, Strategy
from repro.packing.policy import policy_for_bitwidth
from repro.perfmodel.model import PerformanceModel
from repro.serve.batcher import BatchPlanner
from repro.serve.clock import Clock, SimulatedClock
from repro.serve.queue import BoundedRequestQueue
from repro.serve.request import InferenceRequest, RequestResult, RequestStatus
from repro.vit.runtime import preflight_strategy, time_inference
from repro.vit.zoo import model_config

__all__ = ["ServeConfig", "ServeStats", "InferenceService"]

#: Batch-size histogram bounds: the power-of-two planner palette.
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Simulated-latency histogram bounds (seconds).
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0
)


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving replica group."""

    #: The preferred execution strategy for every batch.
    strategy: Strategy = VITBIT
    #: Bounded-queue capacity; puts beyond it are rejected (backpressure).
    max_queue: int = 64
    #: Largest batch the planner may choose.
    max_batch: int = 32
    #: How long a worker lingers after picking up the queue head to let
    #: compatible requests accumulate (simulated seconds).
    batch_window_seconds: float = 0.002
    #: Concurrent batch workers (replicas).
    workers: int = 1
    #: Requeue attempts after an internal pricing/scheduling error.
    max_retries: int = 1
    #: Reject at admission when even a solo batch cannot meet the
    #: request's deadline (cheaper than expiring it later).
    admission_deadline_check: bool = True
    #: Fault injection: bitwidths whose packing preflight is treated as
    #: refuted, forcing the degraded path (tests and the CI smoke job).
    inject_refute_bits: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.max_queue < 1 or self.max_batch < 1 or self.workers < 1:
            raise ServeError("max_queue, max_batch and workers must be >= 1")
        if self.batch_window_seconds < 0 or self.max_retries < 0:
            raise ServeError("batch_window_seconds/max_retries must be >= 0")


@dataclass
class ServeStats:
    """Service-side counters (request outcomes live in the results)."""

    submitted: int = 0
    accepted: int = 0
    rejected_queue_full: int = 0
    rejected_infeasible: int = 0
    completed: int = 0
    expired: int = 0
    failed: int = 0
    retries: int = 0
    batches: int = 0
    #: Batches served by the degraded baseline after a refuted preflight.
    fallback_batches: int = 0
    #: Requests served by the degraded baseline.
    fallback_requests: int = 0
    #: Requests withdrawn while queued (hedged duplicates).
    cancelled: int = 0
    #: Requests failed by :meth:`InferenceService.abort` (replica crash).
    aborted: int = 0
    #: Batches checked by the bit-exactness verifier (when installed).
    verified_batches: int = 0
    #: Verified batches whose packed result did NOT match the reference.
    bit_inexact: int = 0
    #: Chosen batch size -> how many batches used it.
    batch_sizes: dict = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        """Total admission rejections (backpressure + infeasible)."""
        return self.rejected_queue_full + self.rejected_infeasible

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every counter."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_infeasible": self.rejected_infeasible,
            "completed": self.completed,
            "expired": self.expired,
            "failed": self.failed,
            "retries": self.retries,
            "batches": self.batches,
            "fallback_batches": self.fallback_batches,
            "fallback_requests": self.fallback_requests,
            "cancelled": self.cancelled,
            "aborted": self.aborted,
            "verified_batches": self.verified_batches,
            "bit_inexact": self.bit_inexact,
            "batch_sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
        }


class _Pending:
    """A queued request with its resolution future."""

    __slots__ = ("request", "future", "arrival", "retries")

    def __init__(self, request: InferenceRequest, future: asyncio.Future, arrival: float):
        self.request = request
        self.future = future
        self.arrival = arrival
        self.retries = 0


class InferenceService:
    """Batched inference over the ViT runtime and performance model."""

    def __init__(
        self,
        machine: MachineSpec,
        config: ServeConfig | None = None,
        clock: Clock | None = None,
    ):
        self.machine = machine
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else SimulatedClock()
        self.queue: BoundedRequestQueue = BoundedRequestQueue(
            self.config.max_queue, self.clock
        )
        self.stats = ServeStats()
        #: Service-time multiplier applied at execution (not planning)
        #: time — the chaos engine's latency-spike fault raises it, so
        #: planned batches overrun their budgets the way a thermally
        #: throttled GPU would.
        self.latency_scale: float = 1.0
        #: Optional bit-exactness probe ``(model, bits, strategy, size)
        #: -> bool`` run after every dispatched batch; a False return is
        #: counted in ``stats.bit_inexact`` (never raised).  The cluster
        #: layer installs a packed-vs-reference GEMM canary here.
        self.verifier = None
        self._pms: dict[int, PerformanceModel] = {}
        #: (model, bits) -> (effective strategy, fallback?, reason)
        self._preflight: dict[tuple, tuple[Strategy, bool, str]] = {}
        self._price_memo: dict[tuple, float] = {}
        self._planner = BatchPlanner(self._price, self.config.max_batch)
        self._workers: list[asyncio.Task] = []
        #: Bitwidths currently treated as refuted (seeded from the
        #: config; :meth:`force_refute` mutates it for chaos storms).
        self._injected_refute: set[int] = set(self.config.inject_refute_bits)
        #: Requests picked up by a worker but not yet resolved; failed
        #: en masse by :meth:`abort` so a crash never strands a future.
        self._inflight: set[_Pending] = set()
        self._paused: asyncio.Future | None = None
        self._aborted = False

    # -- model plumbing ------------------------------------------------------

    def pm_for(self, bits: int) -> PerformanceModel:
        """The (clamping) performance model for one activation bitwidth.

        With a learned policy table installed (``REPRO_POLICY_TABLE``),
        the table's proven layout for the bitwidth replaces the static
        Fig. 3 rule; the serve preflight then proves *that* layout.
        """
        if bits not in self._pms:
            from repro.packing.search import resolve_policy

            policy = resolve_policy(
                bits, bits, default=policy_for_bitwidth(bits)
            )
            self._pms[bits] = PerformanceModel(
                self.machine, policy, clamp_ratio=True
            )
        return self._pms[bits]

    @property
    def ratio_clamps(self) -> int:
        """Split-rule clamp events across every bitwidth's model."""
        return sum(pm.ratio_clamps for pm in self._pms.values())

    def _price(self, model: str, bits: int, strategy: Strategy, batch: int) -> float:
        """Priced service time of one (model, bits, strategy, batch)."""
        key = (model, bits, strategy.name, batch)
        if key not in self._price_memo:
            timing = time_inference(
                self.pm_for(bits), strategy, config=model_config(model), batch=batch
            )
            self._price_memo[key] = timing.total_seconds
        return self._price_memo[key]

    def effective_strategy(self, model: str, bits: int) -> tuple[Strategy, bool, str]:
        """The strategy a (model, bits) batch actually runs, after preflight.

        Returns ``(strategy, fallback, reason)``; memoized, so the
        prover and split probes run once per pair.
        """
        key = (model, bits)
        if key not in self._preflight:
            strategy = self.config.strategy
            fallback, reason = False, ""
            try:
                if bits in self._injected_refute:
                    raise OverflowBudgetError(
                        f"injected refutation of the {bits}-bit packing "
                        "plan (ServeConfig.inject_refute_bits)"
                    )
                preflight_strategy(
                    self.pm_for(bits), strategy, config=model_config(model), batch=1
                )
            except (OverflowBudgetError, PackingError, ScheduleError) as exc:
                strategy = self.config.strategy.degraded()
                fallback, reason = True, str(exc)
                obs.counter(
                    "serve_preflight_refutations_total",
                    "(model, bitwidth) preflights refuted into the "
                    "degraded baseline",
                ).inc()
            self._preflight[key] = (strategy, fallback, reason)
        return self._preflight[key]

    def force_refute(self, bits: int, active: bool = True) -> None:
        """Treat ``bits``-wide packing preflights as refuted (or stop).

        The chaos engine's refuted-packing storm toggles this at
        runtime; the memoized preflight verdicts for that bitwidth are
        invalidated so the next batch re-probes and degrades (or
        recovers) immediately.
        """
        if active:
            self._injected_refute.add(bits)
        else:
            self._injected_refute.discard(bits)
        for key in [k for k in self._preflight if k[1] == bits]:
            del self._preflight[key]

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the batch workers."""
        if self._workers:
            raise ServeError("service already started")
        self._workers = [
            asyncio.ensure_future(self._worker()) for _ in range(self.config.workers)
        ]

    async def stop(self) -> None:
        """Stop accepting work, drain the queue, join the workers."""
        self.queue.close()
        if self._workers:
            await asyncio.gather(*self._workers)
            self._workers = []

    @property
    def paused(self) -> bool:
        """True while the workers are hung (chaos worker-hang fault)."""
        return self._paused is not None

    @property
    def aborted(self) -> bool:
        """True once :meth:`abort` has torn this service down."""
        return self._aborted

    @property
    def inflight(self) -> int:
        """Requests picked up by a worker but not yet resolved."""
        return len(self._inflight)

    def pause(self) -> None:
        """Hang the batch workers: no new dispatches until :meth:`resume`.

        Queued requests sit, heartbeats stop advancing, and the cluster
        failure detector eventually declares the replica dead — exactly
        the grey-failure a wedged GPU driver produces.
        """
        if self._paused is None:
            self._paused = asyncio.get_running_loop().create_future()

    def resume(self) -> None:
        """Release workers hung by :meth:`pause` (no-op when running)."""
        if self._paused is not None:
            gate, self._paused = self._paused, None
            if not gate.done():
                gate.set_result(None)
            self.clock.touch()

    def abort(self, detail: str = "replica crashed") -> list[InferenceRequest]:
        """Crash this service: kill the workers, fail all pending work.

        Every queued and in-flight request resolves immediately as
        ``FAILED`` with ``detail`` — mid-batch work included — so no
        submitter future is ever stranded.  Returns the requests that
        were lost, in FIFO-ish order, for the cluster's write-ahead
        intent log to re-admit elsewhere.  Idempotent.
        """
        if self._aborted:
            return []
        self._aborted = True
        for task in self._workers:
            task.cancel()
        self._workers = []
        self.resume()
        self.queue.close()
        casualties = list(self.queue.drain()) + sorted(
            self._inflight, key=lambda p: p.request.request_id
        )
        self._inflight.clear()
        lost = []
        for pending in casualties:
            if pending.future.done():
                continue
            lost.append(pending.request)
            self.stats.aborted += 1
            self.stats.failed += 1
            self._finish(pending, RequestStatus.FAILED, detail=detail)
        obs.counter(
            "serve_aborts_total", "service crashes (chaos or failover)"
        ).inc()
        return lost

    # -- submission ----------------------------------------------------------

    def submit_nowait(self, request: InferenceRequest) -> asyncio.Future:
        """Admit (or reject) a request; returns the result future."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        pending = _Pending(request, future, self.clock.now())
        self.stats.submitted += 1
        obs.counter(
            "serve_requests_total",
            "requests by terminal status (submitted counts admissions tried)",
            {"status": "submitted"},
        ).inc()
        try:
            if self.config.admission_deadline_check:
                strategy, _, _ = self.effective_strategy(request.model, request.bits)
                solo = self._price(request.model, request.bits, strategy, 1)
                if solo > request.deadline:
                    self.stats.rejected_infeasible += 1
                    obs.counter(
                        "serve_rejections_total",
                        "admission rejections by reason",
                        {"reason": "infeasible_deadline"},
                    ).inc()
                    self._finish(
                        pending,
                        RequestStatus.REJECTED,
                        detail=(
                            f"infeasible deadline: solo service time "
                            f"{solo * 1e3:.2f} ms exceeds the "
                            f"{request.deadline * 1e3:.2f} ms deadline"
                        ),
                    )
                    return future
            self.queue.put_nowait(pending)
            self.stats.accepted += 1
        except AdmissionError as exc:
            self.stats.rejected_queue_full += 1
            obs.counter(
                "serve_rejections_total",
                "admission rejections by reason",
                {"reason": "queue_full"},
            ).inc()
            self._finish(pending, RequestStatus.REJECTED, detail=str(exc))
        except ReproError as exc:
            self.stats.failed += 1
            self._finish(pending, RequestStatus.FAILED, detail=str(exc))
        return future

    async def submit(self, request: InferenceRequest) -> RequestResult:
        """Submit and await the request's terminal result."""
        return await self.submit_nowait(request)

    # -- the batch worker ----------------------------------------------------

    async def _worker(self) -> None:
        while True:
            head = await self.queue.get()
            if head is None:
                return
            # Track the head from pickup so a crash between dequeue and
            # dispatch still fails (and recovers) it.
            self._inflight.add(head)
            if self._paused is not None:
                await self._paused
            if self.config.batch_window_seconds > 0:
                await self.clock.sleep(self.config.batch_window_seconds)
            await self._dispatch(head)

    async def _dispatch(self, head: _Pending) -> None:
        request = head.request
        key = request.batch_key()
        extra = self.queue.peek_matching(
            lambda p: p.request.batch_key() == key, self.config.max_batch - 1
        )
        candidates = [head] + extra
        now = self.clock.now()
        try:
            strategy, fallback, reason = self.effective_strategy(
                request.model, request.bits
            )
            decision = self._planner.plan(
                candidates, now, strategy, request.bits, request.model
            )
        except ReproError as exc:
            self._retry_or_fail(head, exc)
            return

        self.queue.take([c for c in decision.admitted + decision.expired if c is not head])
        self._inflight.update(decision.admitted)
        self._inflight.update(decision.expired)
        for p in decision.expired:
            self.stats.expired += 1
            self._finish(
                p,
                RequestStatus.EXPIRED,
                strategy=strategy,
                detail="deadline passed while queued",
            )
        if not decision.admitted:
            return

        self.stats.batches += 1
        self.stats.batch_sizes[decision.size] = (
            self.stats.batch_sizes.get(decision.size, 0) + 1
        )
        obs.counter("serve_batches_total", "dispatched batches").inc()
        obs.histogram(
            "serve_batch_size",
            "chosen batch size per dispatch",
            buckets=_BATCH_SIZE_BUCKETS,
        ).observe(decision.size)
        if fallback:
            self.stats.fallback_batches += 1
            obs.counter(
                "serve_fallback_batches_total",
                "batches served by the degraded baseline",
            ).inc()
        with obs.get_tracer().span(
            "serve.batch",
            model=request.model,
            bits=request.bits,
            size=decision.size,
            strategy=strategy.name,
            fallback=fallback,
        ):
            # latency_scale is applied here, not at planning time: an
            # injected latency spike slows execution without the planner
            # knowing, so deadline overruns surface as expiries.
            await self.clock.sleep(decision.service_seconds * self.latency_scale)

        if self.verifier is not None:
            self.stats.verified_batches += 1
            if not self.verifier(
                request.model, request.bits, strategy, decision.size
            ):
                self.stats.bit_inexact += 1
                obs.counter(
                    "serve_bit_inexact_total",
                    "verified batches whose packed result diverged from "
                    "the reference (must stay zero)",
                ).inc()

        done = self.clock.now()
        for p in decision.admitted:
            latency = done - p.arrival
            if done > p.arrival + p.request.deadline:
                self.stats.expired += 1
                self._finish(
                    p,
                    RequestStatus.EXPIRED,
                    strategy=strategy,
                    fallback=fallback,
                    batch_size=decision.size,
                    latency=latency,
                    detail="completed after deadline (best-effort batch)",
                )
            else:
                self.stats.completed += 1
                if fallback:
                    self.stats.fallback_requests += 1
                    obs.counter(
                        "serve_fallback_requests_total",
                        "requests served by the degraded baseline",
                    ).inc()
                obs.histogram(
                    "serve_latency_seconds",
                    "simulated completion latency of served requests",
                    buckets=_LATENCY_BUCKETS,
                ).observe(latency)
                self._finish(
                    p,
                    RequestStatus.COMPLETED,
                    strategy=strategy,
                    fallback=fallback,
                    batch_size=decision.size,
                    latency=latency,
                    detail=reason if fallback else "",
                )

    def _retry_or_fail(self, pending: _Pending, exc: ReproError) -> None:
        if pending.retries < self.config.max_retries:
            try:
                self.queue.put_nowait(pending)
            except (AdmissionError, ServeError):
                pass  # rejected requeue: fall through without counting a retry
            else:
                # Count the retry only once the requeue is accepted, so a
                # rejected attempt neither overcounts stats.retries nor
                # reports a stale count in the failure result below.
                pending.retries += 1
                self.stats.retries += 1
                self._inflight.discard(pending)
                return
        self.stats.failed += 1
        self._finish(
            pending,
            RequestStatus.FAILED,
            retries=pending.retries,
            detail=f"{type(exc).__name__}: {exc}",
        )

    def cancel_queued(self, request_id: int) -> bool:
        """Withdraw a still-queued request (hedged duplicate lost its race).

        Returns True when the request was found in the queue and
        resolved as ``CANCELLED``; False when it is already being served
        (or finished), in which case its batch simply runs to completion
        and the stale result is discarded by the caller.
        """
        pending = self.queue.remove_first(
            lambda p: p.request.request_id == request_id and not p.future.done()
        )
        if pending is None:
            return False
        self.stats.cancelled += 1
        self._finish(
            pending,
            RequestStatus.CANCELLED,
            detail="hedged duplicate cancelled (primary completed first)",
        )
        return True

    def _finish(
        self,
        pending: _Pending,
        status: RequestStatus,
        *,
        strategy: Strategy | None = None,
        fallback: bool = False,
        batch_size: int = 0,
        latency: float = 0.0,
        retries: int = 0,
        detail: str = "",
    ) -> None:
        self._inflight.discard(pending)
        if pending.future.done():
            return
        obs.counter(
            "serve_requests_total",
            "requests by terminal status (submitted counts admissions tried)",
            {"status": status.name.lower()},
        ).inc()
        pending.future.set_result(
            RequestResult(
                request_id=pending.request.request_id,
                status=status,
                qos=pending.request.qos.name,
                latency_seconds=latency,
                strategy=strategy.name if strategy is not None else "",
                fallback=fallback,
                batch_size=batch_size,
                retries=retries,
                detail=detail,
            )
        )
        self.clock.touch()
