"""Self-healing replicated serving cluster.

One :class:`~repro.serve.service.InferenceService` is a pristine
worker; a deployment is N of them behind a router that keeps the
latency and bit-exactness story intact while replicas crash, hang and
slow down.  This module adds that layer on the same deterministic
simulated clock:

* **replication + routing** — :class:`ServingCluster` runs
  ``replicas`` independent :class:`InferenceService` instances and
  routes each request to the least-loaded replica with a fresh
  heartbeat;
* **failure detection** — every replica heartbeats on the sim clock; a
  heartbeat older than ``heartbeat_timeout_seconds`` declares the
  replica dead (covers both crashes and grey-failure hangs) and a
  restart is scheduled after ``restart_delay_seconds``;
* **crash recovery** — admissions are recorded in a write-ahead
  :class:`IntentLog`; when a replica dies, its queued and in-flight
  requests fail over to a healthy replica with deadline-aware
  exponential backoff plus seeded jitter (byte-identical timelines per
  seed);
* **request hedging** — an ``interactive`` request still unresolved
  after ``hedge_delay_seconds`` is duplicated on a second replica;
  first terminal result wins and the loser is cancelled out of its
  queue when still possible;
* **load shedding** — under overload the router sheds ``batch`` then
  ``standard`` traffic at admission, protecting ``interactive`` QoS
  (the serving-layer analogue of the graceful-degradation tiering);
* **bit-exactness canary** — every dispatched batch runs a tiny
  packed-vs-reference GEMM with that batch's bitwidth policy; a
  mismatch is counted in ``bit_inexact``, which every chaos scenario
  asserts stays **zero**: faults may cost latency, never correctness.

Drive it with :func:`run_cluster_load` (optionally under a
:class:`~repro.chaos.ChaosEngine`), or from the CLI via
``repro serve --replicas N --chaos-seed S``.  See
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import asyncio
import enum
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.arch import jetson_orin_agx
from repro.arch.specs import MachineSpec
from repro.errors import ServeError
from repro.fusion.qos import QOS_CLASSES
from repro.packing import packed_gemm_unsigned, policy_for_bitwidth, reference_gemm
from repro.serve.clock import Clock, SimulatedClock
from repro.serve.loadgen import LoadSpec, _percentiles, generate_requests
from repro.serve.request import InferenceRequest, RequestResult, RequestStatus
from repro.serve.service import InferenceService, ServeConfig
from repro.utils.rng import make_rng

__all__ = [
    "ClusterConfig",
    "ClusterStats",
    "ClusterReport",
    "IntentLog",
    "Replica",
    "ReplicaState",
    "ServingCluster",
    "run_cluster_load",
]

#: Substrings of a FAILED result's detail that mark it as a replica
#: availability failure (safe to fail over) rather than a request
#: problem (poison/pricing error — retrying elsewhere cannot help).
_FAILOVER_MARKERS = ("crashed", "queue is closed")


def _is_failover(result: RequestResult) -> bool:
    """True when ``result`` is a replica-availability failure."""
    return result.status is RequestStatus.FAILED and any(
        marker in result.detail for marker in _FAILOVER_MARKERS
    )


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of the replicated cluster (router + replicas)."""

    #: Number of independent serving replicas.
    replicas: int = 3
    #: Per-replica service configuration.
    service: ServeConfig = field(default_factory=ServeConfig)
    #: Replica heartbeat period on the simulated clock.
    heartbeat_interval_seconds: float = 0.004
    #: Heartbeat age beyond which a replica is declared dead.
    heartbeat_timeout_seconds: float = 0.016
    #: Delay between failure detection and the replacement coming up.
    restart_delay_seconds: float = 0.010
    #: Router-level failover attempts per request (on top of the
    #: replica-internal retry budget).
    max_retries: int = 3
    #: First failover backoff; doubles per attempt (``backoff_factor``).
    backoff_base_seconds: float = 0.002
    backoff_factor: float = 2.0
    #: Jitter fraction: each backoff stretches by up to this much,
    #: drawn from the router's seeded RNG (deterministic per seed).
    backoff_jitter: float = 0.5
    #: Hedge interactive requests still unresolved after this long;
    #: ``None`` disables hedging.
    hedge_delay_seconds: float | None = 0.008
    #: Cluster-wide pending-request depth at which ``batch`` traffic is
    #: shed at the router.
    shed_batch_depth: int = 48
    #: Depth at which ``standard`` traffic is shed too.
    shed_standard_depth: int = 96
    #: Run the packed-vs-reference bit-exactness canary per batch.
    verify_results: bool = True
    #: Seed of the router RNG (backoff jitter, canary data).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ServeError(f"replicas must be >= 1, got {self.replicas}")
        if self.heartbeat_timeout_seconds < self.heartbeat_interval_seconds:
            raise ServeError("heartbeat timeout must cover >= one interval")
        if self.max_retries < 0 or self.backoff_base_seconds < 0:
            raise ServeError("max_retries/backoff_base_seconds must be >= 0")
        if not 0 <= self.shed_batch_depth <= self.shed_standard_depth:
            raise ServeError(
                "need 0 <= shed_batch_depth <= shed_standard_depth"
            )


@dataclass
class ClusterStats:
    """Router-side counters (replica internals live in each ``ServeStats``)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    #: Requests shed at the router, by QoS class name.
    shed: dict = field(default_factory=dict)
    #: Failover re-admissions driven by the write-ahead intent log.
    wal_readmitted: int = 0
    #: Dead replicas declared by the heartbeat monitor.
    failures_detected: int = 0
    #: Replicas brought back up after a failure.
    restarts: int = 0
    #: Interactive requests duplicated onto a second replica.
    hedges: int = 0
    #: Hedged duplicates that finished first (won the race).
    hedges_won: int = 0
    #: Losing duplicates withdrawn from their queue in time.
    hedges_cancelled: int = 0
    #: Losing duplicates already in flight (their work was wasted).
    hedges_wasted: int = 0
    #: Detection-to-recovery times of every healed replica (sim s).
    recovery_seconds: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every counter."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "shed": dict(sorted(self.shed.items())),
            "wal_readmitted": self.wal_readmitted,
            "failures_detected": self.failures_detected,
            "restarts": self.restarts,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "hedges_cancelled": self.hedges_cancelled,
            "hedges_wasted": self.hedges_wasted,
            "recovery_seconds": [round(r, 6) for r in self.recovery_seconds],
        }


@dataclass
class _Intent:
    """One write-ahead log record: a request the cluster owes a result."""

    request: InferenceRequest
    arrival: float
    attempts: int = 0
    replica: int | None = None


class IntentLog:
    """Write-ahead intent log of admitted-but-unresolved requests.

    Admission appends an intent *before* the request reaches any
    replica queue; resolution removes it.  When a replica dies, every
    intent assigned to it is still in the log, which is what lets the
    router re-admit the victim requests instead of losing them — the
    serving analogue of WAL redo.
    """

    def __init__(self) -> None:
        self._open: dict[int, _Intent] = {}
        self.appended = 0
        self.resolved = 0
        self.readmitted = 0

    def __len__(self) -> int:
        return len(self._open)

    def open(self, request: InferenceRequest, arrival: float) -> _Intent:
        """Record the intent to serve ``request`` (before dispatch)."""
        intent = _Intent(request=request, arrival=arrival)
        self._open[request.request_id] = intent
        self.appended += 1
        return intent

    def assign(self, request_id: int, replica: int) -> None:
        """Note which replica currently holds the request."""
        if request_id in self._open:
            self._open[request_id].replica = replica

    def readmit(self, request_id: int) -> int:
        """Count one failover re-admission; returns the attempt number."""
        self.readmitted += 1
        intent = self._open.get(request_id)
        if intent is None:
            return 0
        intent.attempts += 1
        return intent.attempts

    def close(self, request_id: int) -> None:
        """Resolve the intent (the client got its terminal result)."""
        if self._open.pop(request_id, None) is not None:
            self.resolved += 1

    def assigned_to(self, replica: int) -> list[InferenceRequest]:
        """Open intents currently held by ``replica`` (crash audit)."""
        return [
            i.request
            for i in self._open.values()
            if i.replica == replica
        ]


class ReplicaState(enum.Enum):
    """Liveness of one replica as the router sees it."""

    #: Serving (heartbeats may still be stale — see the monitor).
    UP = "up"
    #: Crashed or torn down; a restart may be pending.
    DOWN = "down"


class Replica:
    """One serving replica: an :class:`InferenceService` plus liveness.

    The replica owns its service instance (rebuilt on every restart —
    crash-stops lose soft state, like real processes), a heartbeat task
    on the shared simulated clock, and a generation counter so delayed
    chaos timers (unhang, spike reset) cannot touch a successor
    incarnation.
    """

    def __init__(
        self,
        index: int,
        machine: MachineSpec,
        config: ServeConfig,
        clock: Clock,
        heartbeat_interval: float,
    ):
        self.index = index
        self.machine = machine
        self.config = config
        self.clock = clock
        self.heartbeat_interval = heartbeat_interval
        self.state = ReplicaState.DOWN
        self.service: InferenceService | None = None
        self.generation = 0
        self.last_heartbeat = float("-inf")
        self.failed_at: float | None = None
        self.crashes = 0
        self._hb_task: asyncio.Task | None = None

    @property
    def name(self) -> str:
        """Stable display name (``replica-<index>``)."""
        return f"replica-{self.index}"

    @property
    def load(self) -> int:
        """Pending requests on this replica (queued + in flight)."""
        if self.service is None:
            return 0
        return len(self.service.queue) + self.service.inflight

    def heartbeat_fresh(self, now: float, timeout: float) -> bool:
        """True when the last heartbeat is within ``timeout`` of ``now``."""
        return now - self.last_heartbeat <= timeout

    async def start(self, verifier=None, refute_bits=()) -> None:
        """(Re)build the service and begin serving + heartbeating."""
        self.generation += 1
        self.service = InferenceService(self.machine, self.config, self.clock)
        self.service.verifier = verifier
        for bits in refute_bits:
            self.service.force_refute(bits)
        await self.service.start()
        self.state = ReplicaState.UP
        self.last_heartbeat = self.clock.now()
        self._hb_task = asyncio.ensure_future(self._heartbeat())

    async def _heartbeat(self) -> None:
        while self.state is ReplicaState.UP:
            service = self.service
            if service is not None and not service.paused:
                self.last_heartbeat = self.clock.now()
            await self.clock.sleep(self.heartbeat_interval)

    def crash(self, detail: str) -> list[InferenceRequest]:
        """Kill this replica; returns the requests its crash stranded."""
        if self.state is ReplicaState.DOWN:
            return []
        self.state = ReplicaState.DOWN
        self.crashes += 1
        self.failed_at = self.clock.now()
        if self._hb_task is not None:
            self._hb_task.cancel()
            self._hb_task = None
        service, self.service = self.service, None
        return service.abort(detail) if service is not None else []

    def hang(self) -> int:
        """Wedge the workers (grey failure); returns the generation so
        the matching unhang can be fenced against restarts."""
        if self.service is not None:
            self.service.pause()
        return self.generation

    def unhang(self, generation: int) -> None:
        """Release a hang, unless the replica was since restarted."""
        if self.generation == generation and self.service is not None:
            self.service.resume()

    async def shutdown(self) -> None:
        """Graceful stop at cluster teardown (drains the queue)."""
        if self._hb_task is not None:
            self._hb_task.cancel()
            self._hb_task = None
        self.state = ReplicaState.DOWN
        if self.service is not None:
            self.service.resume()
            if not self.service.aborted:
                await self.service.stop()


class ServingCluster:
    """N replicas, one router: submit here, survive faults there."""

    def __init__(
        self,
        machine: MachineSpec,
        config: ClusterConfig | None = None,
        clock: Clock | None = None,
    ):
        self.machine = machine
        self.config = config if config is not None else ClusterConfig()
        self.clock = clock if clock is not None else SimulatedClock()
        self.stats = ClusterStats()
        self.wal = IntentLog()
        self.replicas = [
            Replica(
                i,
                machine,
                self.config.service,
                self.clock,
                self.config.heartbeat_interval_seconds,
            )
            for i in range(self.config.replicas)
        ]
        self._rng = make_rng(self.config.seed)
        self._canary_calls = 0
        self._storm_bits: set[int] = set()
        self._monitor_task: asyncio.Task | None = None
        self._aux_tasks: list[asyncio.Task] = []
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bring every replica up and start the failure detector."""
        if self._running:
            raise ServeError("cluster already started")
        self._running = True
        for replica in self.replicas:
            await replica.start(
                verifier=self._verifier(), refute_bits=self._storm_bits
            )
        self._monitor_task = asyncio.ensure_future(self._monitor())

    async def stop(self) -> None:
        """Stop chaos timers and the monitor, drain every replica."""
        self._running = False
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._monitor_task = None
        for task in self._aux_tasks:
            task.cancel()
        self._aux_tasks = []
        for replica in self.replicas:
            await replica.shutdown()

    def _spawn(self, coro) -> None:
        """Track a helper task so :meth:`stop` can cancel it."""
        self._aux_tasks.append(asyncio.ensure_future(coro))

    # -- health --------------------------------------------------------------

    def healthy(self) -> list[Replica]:
        """Replicas that are up with a fresh heartbeat, router order."""
        now = self.clock.now()
        return [
            r
            for r in self.replicas
            if r.state is ReplicaState.UP
            and r.service is not None
            and not r.service.aborted
            and r.heartbeat_fresh(now, self.config.heartbeat_timeout_seconds)
        ]

    @property
    def pending(self) -> int:
        """Cluster-wide pending requests (queued + in flight)."""
        return sum(r.load for r in self.replicas if r.state is ReplicaState.UP)

    async def _monitor(self) -> None:
        """Failure detector: declare stale replicas dead, heal them."""
        timeout = self.config.heartbeat_timeout_seconds
        while self._running:
            now = self.clock.now()
            for replica in self.replicas:
                if replica.state is ReplicaState.UP and not replica.heartbeat_fresh(
                    now, timeout
                ):
                    self._declare_dead(
                        replica,
                        f"replica {replica.index} crashed: heartbeat older "
                        f"than {timeout * 1e3:.0f} ms",
                    )
            await self.clock.sleep(self.config.heartbeat_interval_seconds)

    def _declare_dead(self, replica: Replica, detail: str) -> None:
        """Tear a replica down and schedule its replacement."""
        self.stats.failures_detected += 1
        obs.counter(
            "cluster_failures_detected_total",
            "replicas declared dead by the heartbeat monitor",
        ).inc()
        lost = replica.crash(detail)
        for request in lost:
            self.wal.assign(request.request_id, -1)  # orphaned, pending retry
        self._spawn(self._restart_later(replica))

    def inject_crash(self, index: int, detail: str = "") -> bool:
        """Chaos hook: crash replica ``index`` now (False when down)."""
        replica = self.replicas[index]
        if replica.state is ReplicaState.DOWN:
            return False
        self._declare_dead(
            replica, detail or f"replica {index} crashed: injected fault"
        )
        return True

    def inject_hang(self, index: int, duration: float) -> bool:
        """Chaos hook: wedge replica ``index`` for ``duration`` seconds.

        The hang itself is silent — detection is the heartbeat
        monitor's job; if it fires first the replica is crash-restarted
        and the delayed unhang fences on the generation.
        """
        replica = self.replicas[index]
        if replica.state is ReplicaState.DOWN or replica.service is None:
            return False
        generation = replica.hang()

        async def _release() -> None:
            await self.clock.sleep(duration)
            replica.unhang(generation)

        self._spawn(_release())
        return True

    def inject_latency_spike(
        self, index: int, magnitude: float, duration: float
    ) -> bool:
        """Chaos hook: scale replica ``index``'s service times."""
        replica = self.replicas[index]
        if replica.state is ReplicaState.DOWN or replica.service is None:
            return False
        service, generation = replica.service, replica.generation
        service.latency_scale = magnitude

        async def _reset() -> None:
            await self.clock.sleep(duration)
            if replica.generation == generation and replica.service is service:
                service.latency_scale = 1.0

        self._spawn(_reset())
        return True

    def set_refute_storm(self, bits: int, active: bool) -> None:
        """Chaos hook: force every replica's ``bits`` preflight refuted.

        Replicas restarted while the storm is active inherit it, so the
        degraded path holds cluster-wide until the storm clears.
        """
        if active:
            self._storm_bits.add(bits)
        else:
            self._storm_bits.discard(bits)
        for replica in self.replicas:
            if replica.service is not None:
                replica.service.force_refute(bits, active)

    async def _restart_later(self, replica: Replica) -> None:
        await self.clock.sleep(self.config.restart_delay_seconds)
        if not self._running or replica.state is not ReplicaState.DOWN:
            return
        await replica.start(
            verifier=self._verifier(), refute_bits=self._storm_bits
        )
        self.stats.restarts += 1
        if replica.failed_at is not None:
            recovery = self.clock.now() - replica.failed_at
            self.stats.recovery_seconds.append(recovery)
            obs.histogram(
                "cluster_recovery_seconds",
                "failure detection to replacement-up time",
                buckets=(0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5),
            ).observe(recovery)
        obs.counter(
            "cluster_restarts_total", "replicas healed after a failure"
        ).inc()

    # -- bit-exactness canary -------------------------------------------------

    def _verifier(self):
        """The per-batch verifier to install, or ``None`` when disabled."""
        return self._verify_batch if self.config.verify_results else None

    def _verify_batch(self, model, bits, strategy, size) -> bool:
        """Tiny packed-vs-reference GEMM in this batch's bitwidth policy.

        Deterministic data (router seed + call counter); any mismatch
        means a wrong packed result escaped — counted, never ignored.
        """
        self._canary_calls += 1
        rng = make_rng((self.config.seed << 20) ^ self._canary_calls)
        from repro.packing.search import resolve_policy

        # The canary exercises whatever layout batches actually run —
        # the learned table's when installed, Fig. 3 otherwise.
        policy = resolve_policy(bits, bits, default=policy_for_bitwidth(bits))
        k = 8
        a = rng.integers(0, 1 << min(bits, 7), size=(2, k), dtype=np.int64)
        b = rng.integers(0, 1 << policy.value_bits, size=(k, 2 * policy.lanes),
                         dtype=np.int64)
        got = packed_gemm_unsigned(a, b, policy)
        return bool(np.array_equal(got, reference_gemm(a, b)))

    # -- routing -------------------------------------------------------------

    def _pick_replica(self, exclude: Replica | None = None) -> Replica | None:
        """Least-loaded healthy replica (ties -> lowest index)."""
        candidates = [r for r in self.healthy() if r is not exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.load, r.index))

    def _shed_class(self, qos_name: str) -> bool:
        """Does the current overload tier shed ``qos_name`` traffic?"""
        depth = self.pending
        if depth >= self.config.shed_standard_depth:
            return qos_name in ("standard", "batch")
        if depth >= self.config.shed_batch_depth:
            return qos_name == "batch"
        return False

    def _backoff(self, attempt: int) -> float:
        """Deadline-aware failover delay: exponential base + jitter."""
        base = self.config.backoff_base_seconds * (
            self.config.backoff_factor ** max(0, attempt - 1)
        )
        return base * (1.0 + self.config.backoff_jitter * float(self._rng.random()))

    async def _race(self, futures: list) -> None:
        """Wait until any future in ``futures`` is done (deterministic:
        callbacks are registered in list order and touch the clock)."""
        if any(f.done() for f in futures):
            return
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()

        def _done(_f) -> None:
            if not waiter.done():
                waiter.set_result(None)
                self.clock.touch()

        for f in futures:
            f.add_done_callback(_done)
        try:
            await waiter
        finally:
            for f in futures:
                f.remove_done_callback(_done)

    # -- submission ----------------------------------------------------------

    async def submit(self, request: InferenceRequest) -> RequestResult:
        """Serve one request through the cluster; always returns a result."""
        arrival = self.clock.now()
        deadline_at = arrival + request.deadline
        self.stats.submitted += 1
        self.wal.open(request, arrival)
        try:
            result = await self._serve_one(request, arrival, deadline_at)
        finally:
            self.wal.close(request.request_id)
        self._account(result)
        return result

    def _account(self, result: RequestResult) -> None:
        if result.status is RequestStatus.COMPLETED:
            self.stats.completed += 1
        elif result.status is RequestStatus.REJECTED:
            self.stats.rejected += 1
        elif result.status is RequestStatus.EXPIRED:
            self.stats.expired += 1
        else:
            self.stats.failed += 1

    def _shed_result(self, request: InferenceRequest) -> RequestResult:
        qos = request.qos.name
        self.stats.shed[qos] = self.stats.shed.get(qos, 0) + 1
        obs.counter(
            "cluster_shed_total",
            "requests shed at the router under overload",
            {"qos": qos},
        ).inc()
        return RequestResult(
            request_id=request.request_id,
            status=RequestStatus.REJECTED,
            qos=qos,
            detail=f"load shed: cluster depth {self.pending} over the "
            f"{qos!r} shedding tier",
        )

    async def _serve_one(
        self, request: InferenceRequest, arrival: float, deadline_at: float
    ) -> RequestResult:
        if self._shed_class(request.qos.name):
            return self._shed_result(request)
        attempt = 0
        while True:
            replica = self._pick_replica()
            if replica is None:
                # Whole cluster dark: wait one detection period for a
                # restart, unless the deadline dies first.
                if self.clock.now() >= deadline_at:
                    return RequestResult(
                        request_id=request.request_id,
                        status=RequestStatus.EXPIRED,
                        qos=request.qos.name,
                        retries=attempt,
                        detail="no healthy replica before the deadline",
                    )
                await self.clock.sleep(self.config.heartbeat_interval_seconds)
                continue
            self.wal.assign(request.request_id, replica.index)
            future = replica.service.submit_nowait(request)
            result = await self._await_hedged(request, replica, future)
            if not _is_failover(result):
                result.retries = max(result.retries, attempt)
                result.extra.setdefault("replica", replica.name)
                return result
            # Replica died with our request: redo from the intent log.
            if attempt >= self.config.max_retries:
                result.retries = attempt
                result.detail += f" (failover budget of {attempt} exhausted)"
                return result
            attempt = self.wal.readmit(request.request_id)
            self.stats.wal_readmitted += 1
            obs.counter(
                "cluster_wal_readmitted_total",
                "requests re-admitted from the write-ahead intent log "
                "after a replica failure",
            ).inc()
            await self.clock.sleep(self._backoff(attempt))
            if self.clock.now() >= deadline_at:
                return RequestResult(
                    request_id=request.request_id,
                    status=RequestStatus.EXPIRED,
                    qos=request.qos.name,
                    retries=attempt,
                    detail="deadline passed during failover backoff",
                )

    async def _await_hedged(
        self,
        request: InferenceRequest,
        primary: Replica,
        future: asyncio.Future,
    ) -> RequestResult:
        """Await the primary result, hedging interactive stragglers."""
        delay = self.config.hedge_delay_seconds
        if delay is None or request.qos.name != "interactive":
            return await future
        timer = asyncio.ensure_future(self.clock.sleep(delay))
        await self._race([future, timer])
        if future.done():
            timer.cancel()
            return future.result()
        secondary = self._pick_replica(exclude=primary)
        if secondary is None:
            return await future
        self.stats.hedges += 1
        obs.counter(
            "cluster_hedges_total", "interactive requests hedged"
        ).inc()
        hedge = secondary.service.submit_nowait(request)
        await self._race([future, hedge])
        if future.done() and not _is_failover(future.result()):
            # Primary won: withdraw the duplicate if it is still queued.
            if secondary.service is not None and secondary.service.cancel_queued(
                request.request_id
            ):
                self.stats.hedges_cancelled += 1
            elif not hedge.done():
                self.stats.hedges_wasted += 1
            return future.result()
        if hedge.done():
            result = hedge.result()
            if not _is_failover(result):
                self.stats.hedges_won += 1
                result.extra["hedged"] = True
                result.extra["replica"] = secondary.name
                if primary.service is not None:
                    primary.service.cancel_queued(request.request_id)
                return result
        # Both ended in failover failures (or the primary did and the
        # hedge is still pending): fall back to whichever is terminal.
        if future.done():
            return future.result()
        return await future

    # -- reporting -----------------------------------------------------------

    def replica_stats(self) -> list[dict]:
        """Current per-replica ``ServeStats`` snapshots (live services)."""
        return [
            {
                "replica": r.name,
                "generation": r.generation,
                "crashes": r.crashes,
                "state": r.state.value,
                "stats": r.service.stats.as_dict() if r.service else {},
            }
            for r in self.replicas
        ]

    @property
    def bit_inexact(self) -> int:
        """Canary mismatches across live replica incarnations."""
        return sum(
            r.service.stats.bit_inexact
            for r in self.replicas
            if r.service is not None
        )

    @property
    def verified_batches(self) -> int:
        """Canary runs across live replica incarnations."""
        return sum(
            r.service.stats.verified_batches
            for r in self.replicas
            if r.service is not None
        )


@dataclass
class ClusterReport:
    """Aggregated outcome of one cluster load run (chaos or pristine)."""

    spec: LoadSpec
    results: list[RequestResult]
    stats: dict
    replica_stats: list
    chaos: dict | None
    bit_inexact: int
    verified_batches: int
    sim_seconds: float
    wall_seconds: float
    metrics: dict = field(default_factory=dict)
    latency_ms: dict = field(init=False)
    slo: dict = field(init=False)

    def __post_init__(self) -> None:
        completed = [r for r in self.results if r.ok]
        self.latency_ms = {
            "overall": _percentiles([r.latency_seconds * 1e3 for r in completed])
        }
        for name in QOS_CLASSES:
            per = [r.latency_seconds * 1e3 for r in completed if r.qos == name]
            if per:
                self.latency_ms[name] = _percentiles(per)
        self.slo = self._slo_attainment()

    def _slo_attainment(self) -> dict:
        """Per-QoS completed / (completed + expired + failed).

        Admission-controlled outcomes (rejections, shedding, hedge
        cancellations) are intentional refusals, not SLO misses; only
        admitted requests that then missed count against the SLO.
        """
        served = {RequestStatus.COMPLETED, RequestStatus.EXPIRED,
                  RequestStatus.FAILED}
        out = {}
        for name in ["overall", *QOS_CLASSES]:
            pool = [
                r
                for r in self.results
                if r.status in served and (name == "overall" or r.qos == name)
            ]
            if not pool:
                continue
            done = sum(1 for r in pool if r.ok)
            out[name] = {
                "attained": done,
                "admitted": len(pool),
                "attainment": round(done / len(pool), 6),
            }
        return out

    def count(self, status: RequestStatus) -> int:
        """Requests that ended in ``status``."""
        return sum(1 for r in self.results if r.status is status)

    @property
    def completed(self) -> int:
        """Requests served to completion within their deadline."""
        return self.count(RequestStatus.COMPLETED)

    @property
    def throughput_per_s(self) -> float:
        """Completed requests per simulated second."""
        return self.completed / self.sim_seconds if self.sim_seconds > 0 else 0.0

    @property
    def recovery_seconds(self) -> list:
        """Detection-to-recovery times of healed replicas (sim s)."""
        return list(self.stats.get("recovery_seconds", []))

    def render(self) -> str:
        """Human-readable summary (latency, SLO, faults, recovery)."""
        from repro.utils.tables import format_table

        rows = []
        for name in ["overall", *QOS_CLASSES]:
            if name not in self.latency_ms and name not in self.slo:
                continue
            pct = self.latency_ms.get(name, _percentiles([]))
            slo = self.slo.get(name, {})
            rows.append(
                (
                    name,
                    slo.get("attained", 0),
                    slo.get("admitted", 0),
                    f"{slo.get('attainment', 0.0):.2%}",
                    pct["p50"],
                    pct["p95"],
                    pct["p99"],
                )
            )
        s = self.stats
        table = format_table(
            ["class", "attained", "admitted", "SLO", "p50 (ms)", "p95 (ms)",
             "p99 (ms)"],
            rows,
            title=(
                f"cluster — {self.spec.requests} requests @ "
                f"{self.spec.rate_per_s:.0f}/s, "
                f"{len(self.replica_stats)} replicas, "
                f"{self.sim_seconds * 1e3:.1f} simulated ms "
                f"({self.wall_seconds * 1e3:.0f} ms wall)"
            ),
            ndigits=3,
        )
        recov = self.recovery_seconds
        lines = [
            table,
            "",
            f"throughput {self.throughput_per_s:.0f} req/s · outcomes: "
            f"{self.completed} completed, "
            f"{self.count(RequestStatus.REJECTED)} rejected "
            f"(shed {sum(s.get('shed', {}).values())}), "
            f"{self.count(RequestStatus.EXPIRED)} expired, "
            f"{self.count(RequestStatus.FAILED)} failed",
            f"resilience: {s.get('failures_detected', 0)} failures detected, "
            f"{s.get('restarts', 0)} restarts "
            f"(mean recovery {np.mean(recov) * 1e3:.1f} ms)"
            if recov
            else "resilience: no replica failures",
            f"failover: {s.get('wal_readmitted', 0)} WAL re-admissions · "
            f"hedging: {s.get('hedges', 0)} hedged, "
            f"{s.get('hedges_won', 0)} won, "
            f"{s.get('hedges_cancelled', 0)} cancelled, "
            f"{s.get('hedges_wasted', 0)} wasted",
            f"bit-exactness: {self.bit_inexact} inexact of "
            f"{self.verified_batches} verified batches",
        ]
        if self.chaos:
            lines.append(
                f"chaos: seed {self.chaos.get('seed')} injected "
                f"{self.chaos.get('injected', 0)} faults "
                f"({self.chaos.get('by_kind', {})})"
            )
        return "\n".join(lines)

    def to_summary(self) -> dict:
        """JSON-serializable form for ``summary.json`` (wall time kept
        out of the deterministic core — see :meth:`deterministic_summary`)."""
        payload = self.deterministic_summary()
        payload["wall_seconds"] = round(self.wall_seconds, 4)
        return payload

    def deterministic_summary(self) -> dict:
        """The summary minus host-dependent fields; two runs with the
        same seeds must produce byte-identical JSON for this dict."""
        return {
            "requests": self.spec.requests,
            "rate_per_s": self.spec.rate_per_s,
            "seed": self.spec.seed,
            "model": self.spec.model,
            "replicas": len(self.replica_stats),
            "sim_seconds": round(self.sim_seconds, 6),
            "throughput_per_s": round(self.throughput_per_s, 2),
            "latency_ms": self.latency_ms,
            "slo": self.slo,
            "completed": self.completed,
            "rejected": self.count(RequestStatus.REJECTED),
            "expired": self.count(RequestStatus.EXPIRED),
            "failed": self.count(RequestStatus.FAILED),
            "bit_inexact": self.bit_inexact,
            "verified_batches": self.verified_batches,
            "stats": self.stats,
            "replica_stats": self.replica_stats,
            "chaos": self.chaos,
        }

    def write_summary(self, path) -> "object":
        """Merge this report into ``summary.json`` under ``"cluster"``."""
        sections: dict = {"cluster": self.to_summary()}
        if self.metrics:
            sections["metrics"] = self.metrics
        return obs.merge_summary(path, sections)


def run_cluster_load(
    machine: MachineSpec | None = None,
    config: ClusterConfig | None = None,
    spec: LoadSpec | None = None,
    chaos=None,
) -> ClusterReport:
    """One deterministic cluster benchmark, optionally under chaos.

    ``chaos`` is a :class:`repro.chaos.ChaosSpec` (or ``None`` for a
    pristine run); the fault timeline, the load schedule and the
    cluster's own jitter all come from seeded RNGs, so the same seeds
    produce byte-identical stats and traces.
    """
    from repro.chaos import ChaosEngine

    machine = machine if machine is not None else jetson_orin_agx()
    config = config if config is not None else ClusterConfig()
    spec = spec if spec is not None else LoadSpec()
    clock = SimulatedClock()
    cluster = ServingCluster(machine, config, clock)
    engine = ChaosEngine(chaos, cluster) if chaos is not None else None
    schedule = generate_requests(spec)

    async def _main() -> list[RequestResult]:
        await cluster.start()
        chaos_task = (
            asyncio.ensure_future(engine.run()) if engine is not None else None
        )
        futures = []
        for arrival, request in schedule:
            delay = arrival - clock.now()
            if delay > 0:
                await clock.sleep(delay)
            futures.append(asyncio.ensure_future(cluster.submit(request)))
        results = await asyncio.gather(*futures)
        if chaos_task is not None:
            await chaos_task
        await cluster.stop()
        return list(results)

    t0 = time.perf_counter()  # vblint: VB306 (host wall time, reporting only)
    results = clock.run(_main())
    wall = time.perf_counter() - t0  # vblint: VB306
    return ClusterReport(
        spec=spec,
        results=results,
        stats=cluster.stats.as_dict(),
        replica_stats=cluster.replica_stats(),
        chaos=engine.summary() if engine is not None else None,
        bit_inexact=cluster.bit_inexact,
        verified_batches=cluster.verified_batches,
        sim_seconds=clock.now(),
        wall_seconds=wall,
        metrics=obs.snapshot(),
    )
