"""Dynamic batching policy driven by the performance model.

The planner answers one question per dispatch: *given the requests
compatible with the one at the head of the queue, how many should ride
in this batch?*  Bigger batches amortize weight traffic and kernel
launches (higher throughput), smaller ones finish sooner (lower
latency); the right size depends on the machine, the model and the
bitwidth — exactly what the calibrated
:class:`~repro.perfmodel.PerformanceModel` prices.  The planner probes
a power-of-two palette of sizes through the (cached) model and takes
the largest one every member's QoS admits:

* **deadline**: predicted completion ``now + t(b)`` must precede each
  member's absolute deadline;
* **slowdown**: ``t(b)`` must stay within the member's
  :class:`~repro.fusion.qos.QosClass` budget ``max_slowdown * t(1)`` —
  the batching analogue of Tacker's co-run admission test.

Requests whose deadline has already passed are separated out so the
service can expire them instead of wasting a batch slot; if not even a
solo batch can meet the head request's deadline it is still served
best-effort (the completion check will expire it) rather than starved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ServeError
from repro.fusion.strategies import Strategy

__all__ = ["BatchDecision", "BatchPlanner", "batch_palette"]

#: Prices one (model, bits, strategy, batch_size) inference in seconds.
PriceFn = Callable[[str, int, Strategy, int], float]


def batch_palette(max_batch: int) -> tuple[int, ...]:
    """Power-of-two batch sizes up to ``max_batch`` (inclusive).

    A small fixed palette keeps the set of priced kernel shapes — and
    therefore the persistent timing-cache footprint — bounded and
    deterministic across runs.
    """
    if max_batch < 1:
        raise ServeError(f"max_batch must be >= 1, got {max_batch}")
    sizes = []
    b = 1
    while b < max_batch:
        sizes.append(b)
        b *= 2
    sizes.append(max_batch)
    return tuple(dict.fromkeys(sizes))


@dataclass
class BatchDecision:
    """The planner's verdict for one dispatch."""

    size: int
    service_seconds: float
    solo_seconds: float
    #: Candidates chosen for this batch, FIFO order.
    admitted: list = field(default_factory=list)
    #: Candidates whose deadline had already passed at planning time.
    expired: list = field(default_factory=list)
    #: False when even a solo batch misses the head request's deadline
    #: (served best-effort anyway).
    feasible: bool = True


class BatchPlanner:
    """Chooses the batch size per dispatch via the performance model."""

    def __init__(self, price: PriceFn, max_batch: int):
        self._price = price
        self.palette = batch_palette(max_batch)

    def plan(
        self,
        candidates: Sequence,
        now: float,
        strategy: Strategy,
        bits: int,
        model: str = "vit-base",
    ) -> BatchDecision:
        """Pick the largest QoS-admissible batch from ``candidates``.

        ``candidates`` are pending entries exposing ``arrival`` (their
        admission timestamp) and ``request`` (the
        :class:`~repro.serve.request.InferenceRequest`); the head of
        the queue must be first.
        """
        expired = [c for c in candidates if now > c.arrival + c.request.deadline]
        live = [c for c in candidates if now <= c.arrival + c.request.deadline]
        if not live:
            return BatchDecision(
                size=0, service_seconds=0.0, solo_seconds=0.0, expired=expired
            )

        solo = self._price(model, bits, strategy, 1)
        for size in sorted(self.palette, reverse=True):
            if size > len(live):
                continue
            members = live[:size]
            t = self._price(model, bits, strategy, size)
            if all(self._admits(c, now, t, solo) for c in members):
                return BatchDecision(
                    size=size,
                    service_seconds=t,
                    solo_seconds=solo,
                    admitted=members,
                    expired=expired,
                )
        # Not even a solo batch satisfies the head request's budget:
        # serve it best-effort rather than starving it forever.
        return BatchDecision(
            size=1,
            service_seconds=solo,
            solo_seconds=solo,
            admitted=live[:1],
            expired=expired,
            feasible=False,
        )

    @staticmethod
    def _admits(candidate, now: float, t: float, solo: float) -> bool:
        req = candidate.request
        meets_deadline = now + t <= candidate.arrival + req.deadline
        within_budget = t <= req.qos.max_slowdown * solo
        return meets_deadline and within_budget
