"""Deterministic open-loop load generation and the serving report.

The generator draws a request schedule — Poisson arrivals, a
mixed-bitwidth model mix, a QoS class mix — from a seeded RNG, so a
given ``LoadSpec`` always produces the identical stream, byte for byte.
Submission is *open-loop*: requests arrive at their scheduled simulated
times whether or not earlier ones completed, which is what exposes
queueing collapse and makes backpressure measurable.

:func:`run_load` wires a :class:`~repro.serve.service.InferenceService`
to a :class:`~repro.serve.clock.SimulatedClock`, drives the schedule,
and folds the per-request results into a :class:`ServeReport` with
throughput and p50/p95/p99 latency (overall and per QoS class).
``ServeReport.write_summary`` merges the numbers into
``benchmarks/out/summary.json`` under the ``"serve"`` key, next to the
benchmark trajectory the perf engine already records there.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.arch import jetson_orin_agx
from repro.arch.specs import MachineSpec
from repro.errors import ServeError
from repro.fusion.qos import QOS_CLASSES
from repro.serve.clock import SimulatedClock
from repro.serve.request import InferenceRequest, RequestResult, RequestStatus
from repro.serve.service import InferenceService, ServeConfig
from repro.utils.rng import make_rng

__all__ = ["LoadSpec", "ServeReport", "generate_requests", "run_load"]


@dataclass(frozen=True)
class LoadSpec:
    """A deterministic open-loop request stream."""

    requests: int = 200
    #: Mean arrival rate (Poisson process), requests per simulated second.
    rate_per_s: float = 400.0
    seed: int = 0
    model: str = "vit-base"
    #: Activation-bitwidth mix of the stream (bitwidth -> weight).
    bits_mix: tuple = ((8, 0.75), (4, 0.25))
    #: QoS class mix (class name -> weight).
    qos_mix: tuple = (("interactive", 0.2), ("standard", 0.6), ("batch", 0.2))

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ServeError(f"requests must be >= 1, got {self.requests}")
        if self.rate_per_s <= 0:
            raise ServeError(f"rate_per_s must be positive, got {self.rate_per_s}")
        for name, _ in self.qos_mix:
            if name not in QOS_CLASSES:
                raise ServeError(f"unknown QoS class {name!r} in qos_mix")


def _normalized(mix: tuple) -> tuple[list, np.ndarray]:
    values = [v for v, _ in mix]
    weights = np.asarray([w for _, w in mix], dtype=np.float64)
    if len(values) == 0 or float(weights.sum()) <= 0:
        raise ServeError("mix must contain at least one positive weight")
    return values, weights / weights.sum()


def generate_requests(spec: LoadSpec) -> list[tuple[float, InferenceRequest]]:
    """The schedule: ``(arrival_seconds, request)`` pairs, time-sorted."""
    rng = make_rng(spec.seed)
    bit_values, bit_p = _normalized(spec.bits_mix)
    qos_values, qos_p = _normalized(spec.qos_mix)
    gaps = rng.exponential(1.0 / spec.rate_per_s, size=spec.requests)
    arrivals = np.cumsum(gaps)
    bit_idx = rng.choice(len(bit_values), size=spec.requests, p=bit_p)
    qos_idx = rng.choice(len(qos_values), size=spec.requests, p=qos_p)
    schedule = []
    for i in range(spec.requests):
        schedule.append(
            (
                float(arrivals[i]),
                InferenceRequest(
                    request_id=i,
                    model=spec.model,
                    bits=int(bit_values[bit_idx[i]]),
                    qos=QOS_CLASSES[qos_values[qos_idx[i]]],
                ),
            )
        )
    return schedule


def _percentiles(latencies_ms: list[float]) -> dict:
    if not latencies_ms:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(latencies_ms)
    return {
        "p50": round(float(np.percentile(arr, 50)), 4),
        "p95": round(float(np.percentile(arr, 95)), 4),
        "p99": round(float(np.percentile(arr, 99)), 4),
    }


@dataclass
class ServeReport:
    """Aggregated outcome of one load run."""

    spec: LoadSpec
    results: list[RequestResult]
    stats: dict
    ratio_clamps: int
    sim_seconds: float
    wall_seconds: float
    unhandled_errors: int = 0
    #: Process-wide metrics snapshot taken right after the run (the
    #: ``"metrics"`` section of ``summary.json``; empty when the caller
    #: did not capture one).
    metrics: dict = field(default_factory=dict)
    latency_ms: dict = field(init=False)

    def __post_init__(self) -> None:
        completed = [r for r in self.results if r.ok]
        self.latency_ms = {
            "overall": _percentiles([r.latency_seconds * 1e3 for r in completed])
        }
        for name in QOS_CLASSES:
            per = [r.latency_seconds * 1e3 for r in completed if r.qos == name]
            if per:
                self.latency_ms[name] = _percentiles(per)

    # -- derived -------------------------------------------------------------

    def count(self, status: RequestStatus) -> int:
        """Requests that ended in ``status``."""
        return sum(1 for r in self.results if r.status is status)

    @property
    def completed(self) -> int:
        """Requests served to completion within their deadline."""
        return self.count(RequestStatus.COMPLETED)

    @property
    def fallbacks(self) -> int:
        """Requests served by the degraded baseline."""
        return sum(1 for r in self.results if r.ok and r.fallback)

    @property
    def throughput_per_s(self) -> float:
        """Completed requests per simulated second."""
        return self.completed / self.sim_seconds if self.sim_seconds > 0 else 0.0

    # -- presentation --------------------------------------------------------

    def render(self) -> str:
        """Human-readable summary table."""
        from repro.utils.tables import format_table

        rows = []
        for name in ["overall", *QOS_CLASSES]:
            if name not in self.latency_ms:
                continue
            pct = self.latency_ms[name]
            done = (
                self.completed
                if name == "overall"
                else sum(1 for r in self.results if r.ok and r.qos == name)
            )
            rows.append((name, done, pct["p50"], pct["p95"], pct["p99"]))
        table = format_table(
            ["class", "completed", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
            rows,
            title=(
                f"serve — {self.spec.requests} requests @ "
                f"{self.spec.rate_per_s:.0f}/s over "
                f"{self.sim_seconds * 1e3:.1f} simulated ms "
                f"({self.wall_seconds * 1e3:.0f} ms wall)"
            ),
            ndigits=3,
        )
        lines = [
            table,
            "",
            f"throughput {self.throughput_per_s:.0f} req/s · "
            f"{self.stats.get('batches', 0)} batches "
            f"(sizes {self.stats.get('batch_sizes', {})})",
            f"outcomes: {self.completed} completed, "
            f"{self.count(RequestStatus.REJECTED)} rejected, "
            f"{self.count(RequestStatus.EXPIRED)} expired, "
            f"{self.count(RequestStatus.FAILED)} failed, "
            f"{self.unhandled_errors} unhandled errors",
            f"degradation: {self.fallbacks} fallback requests in "
            f"{self.stats.get('fallback_batches', 0)} batches, "
            f"{self.ratio_clamps} split-rule clamps",
        ]
        return "\n".join(lines)

    def to_summary(self) -> dict:
        """JSON-serializable form for ``summary.json``."""
        return {
            "requests": self.spec.requests,
            "rate_per_s": self.spec.rate_per_s,
            "seed": self.spec.seed,
            "model": self.spec.model,
            "sim_seconds": round(self.sim_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_per_s": round(self.throughput_per_s, 2),
            "latency_ms": self.latency_ms,
            "completed": self.completed,
            "rejected": self.count(RequestStatus.REJECTED),
            "expired": self.count(RequestStatus.EXPIRED),
            "failed": self.count(RequestStatus.FAILED),
            "unhandled_errors": self.unhandled_errors,
            "fallback_requests": self.fallbacks,
            "ratio_clamps": self.ratio_clamps,
            "stats": self.stats,
        }

    def write_summary(self, path: "str | pathlib.Path") -> pathlib.Path:
        """Merge this report into ``summary.json`` under ``"serve"``.

        The report's metrics snapshot (when captured) rides along under
        ``"metrics"``.  The write is atomic (temp file + rename via
        :func:`repro.obs.merge_summary`) and preserves every other
        section, so a concurrent ``repro bench`` cannot be torn and
        cannot be torn by us.
        """
        sections: dict = {"serve": self.to_summary()}
        if self.metrics:
            sections["metrics"] = self.metrics
        return obs.merge_summary(path, sections)


async def _drive(
    service: InferenceService, schedule: list[tuple[float, InferenceRequest]]
) -> list[RequestResult]:
    """Open-loop driver: submit at the scheduled simulated times."""
    import asyncio

    await service.start()
    futures = []
    for arrival, request in schedule:
        delay = arrival - service.clock.now()
        if delay > 0:
            await service.clock.sleep(delay)
        futures.append(service.submit_nowait(request))
    results = await asyncio.gather(*futures)
    await service.stop()
    return list(results)


def run_load(
    machine: MachineSpec | None = None,
    config: ServeConfig | None = None,
    spec: LoadSpec | None = None,
) -> ServeReport:
    """Run one deterministic open-loop benchmark on the simulated clock."""
    machine = machine if machine is not None else jetson_orin_agx()
    config = config if config is not None else ServeConfig()
    spec = spec if spec is not None else LoadSpec()
    clock = SimulatedClock()
    service = InferenceService(machine, config, clock)
    schedule = generate_requests(spec)
    t0 = time.perf_counter()  # vblint: VB306 (host wall time, reporting only)
    results = clock.run(_drive(service, schedule))
    wall = time.perf_counter() - t0  # vblint: VB306
    return ServeReport(
        spec=spec,
        results=results,
        stats=service.stats.as_dict(),
        ratio_clamps=service.ratio_clamps,
        sim_seconds=clock.now(),
        wall_seconds=wall,
        unhandled_errors=0,
        metrics=obs.snapshot(),
    )
