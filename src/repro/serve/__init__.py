"""Batched inference serving over the simulated VitBit runtime.

The serving layer turns the per-kernel performance model into an
end-to-end system study: an asyncio service with admission control and
a bounded queue (backpressure), dynamic batching sized per dispatch by
the cached :class:`~repro.perfmodel.PerformanceModel`, QoS classes with
deadlines, and graceful degradation — a refuted packing preflight
drops the batch to the Tensor-only baseline instead of failing it,
and an inapplicable Tensor:CUDA split rule clamps to m = 1.

On top of the single service sits the replicated cluster
(:mod:`repro.serve.cluster`): N replicas behind a health-checked
router with write-ahead failover, deadline-aware retries, request
hedging and load shedding — the self-healing deployment the
:mod:`repro.chaos` engine injects faults into.

Everything runs on a pluggable clock.  The default
:class:`~repro.serve.clock.SimulatedClock` gives deterministic
discrete-event time, so `repro serve` benchmarks (throughput,
p50/p95/p99 latency) are reproducible byte-for-byte across machines.
"""

from repro.serve.batcher import BatchDecision, BatchPlanner, batch_palette
from repro.serve.clock import Clock, SimulatedClock, WallClock
from repro.serve.cluster import (
    ClusterConfig,
    ClusterReport,
    ClusterStats,
    IntentLog,
    Replica,
    ReplicaState,
    ServingCluster,
    run_cluster_load,
)
from repro.serve.loadgen import LoadSpec, ServeReport, generate_requests, run_load
from repro.serve.queue import BoundedRequestQueue
from repro.serve.request import InferenceRequest, RequestResult, RequestStatus
from repro.serve.service import InferenceService, ServeConfig, ServeStats

__all__ = [
    "BatchDecision",
    "BatchPlanner",
    "batch_palette",
    "Clock",
    "SimulatedClock",
    "WallClock",
    "ClusterConfig",
    "ClusterReport",
    "ClusterStats",
    "IntentLog",
    "Replica",
    "ReplicaState",
    "ServingCluster",
    "run_cluster_load",
    "LoadSpec",
    "ServeReport",
    "generate_requests",
    "run_load",
    "BoundedRequestQueue",
    "InferenceRequest",
    "RequestResult",
    "RequestStatus",
    "InferenceService",
    "ServeConfig",
    "ServeStats",
]
