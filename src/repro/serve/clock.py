"""Deterministic simulated time for the asyncio serving loop.

The serving layer measures *simulated* latencies: service times come
from the performance model, not the host's wall clock, so a benchmark
of 200 requests over 500 simulated milliseconds finishes in a few host
milliseconds and produces bit-identical latency distributions on every
run.  :class:`SimulatedClock` provides the two primitives the service
needs — ``now()`` and ``await sleep(dt)`` — plus the driver that
advances time.

How advancement works
---------------------
All coroutines in a serving simulation block on exactly two things:
clock timers (``clock.sleep``) and futures resolved by *other*
coroutines (queue hand-offs, request completions).  Every such event
calls :meth:`SimulatedClock.touch`.  The driver interleaves two steps:

1. **quiesce** — yield to the event loop until one full pass produces
   no new activity (no touch), meaning every runnable coroutine has run
   to its next await;
2. **advance** — pop the earliest pending timer, move ``now`` to its
   wake time, and wake its sleeper.

Because the asyncio ready queue is FIFO and single-threaded, this is
fully deterministic: same inputs, same interleaving, same timestamps.
If the system quiesces with no pending timer and the main coroutine
unfinished, the simulation has deadlocked and :class:`ServeError` says
so instead of hanging.

:class:`WallClock` implements the same interface over real time for
interactive use; everything in :mod:`repro.serve` is written against
the shared :class:`Clock` protocol.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Any

from repro.errors import ServeError
from repro.obs.tracer import activate_clock, deactivate_clock

__all__ = ["Clock", "SimulatedClock", "WallClock"]


class Clock:
    """Minimal clock interface the serving layer is written against."""

    def now(self) -> float:
        """Current time in seconds (simulated or wall)."""
        raise NotImplementedError

    def touch(self) -> None:
        """Record scheduler-visible activity (no-op on wall clocks)."""

    async def sleep(self, delay: float) -> None:
        """Suspend the calling coroutine for ``delay`` seconds."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time: ``asyncio.sleep`` over the host's monotonic clock."""

    def __init__(self) -> None:
        self._origin = time.monotonic()  # vblint: VB306 (this IS the wall clock)

    def now(self) -> float:
        """Seconds since this clock was created (monotonic)."""
        return time.monotonic() - self._origin  # vblint: VB306

    async def sleep(self, delay: float) -> None:
        """Real ``asyncio.sleep`` (negative delays sleep 0)."""
        await asyncio.sleep(max(0.0, delay))


class SimulatedClock(Clock):
    """Virtual time advanced only when every coroutine is blocked."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, asyncio.Future]] = []
        self._seq = 0
        self._activity = 0

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def touch(self) -> None:
        """Record scheduler-visible activity (wake-up, hand-off, timer)."""
        self._activity += 1

    @property
    def pending_timers(self) -> int:
        """Timers waiting to fire (diagnostic)."""
        return len(self._heap)

    async def sleep(self, delay: float) -> None:
        """Suspend for ``delay`` simulated seconds (a heap timer)."""
        if delay <= 0:
            # Still a scheduling point, but no time passes.
            self.touch()
            await asyncio.sleep(0)
            return
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._heap, (self._now + delay, self._seq, fut))
        self._seq += 1
        self.touch()
        await fut

    def _fire_next(self) -> None:
        """Advance to the earliest timer and wake its sleeper."""
        wake, _, fut = heapq.heappop(self._heap)
        self._now = max(self._now, wake)
        if not fut.cancelled():
            fut.set_result(None)
        self.touch()

    #: Consecutive quiet event-loop passes required before the clock
    #: declares the system blocked.  Resolving a future wakes its
    #: awaiter only after intermediate loop passes that perform no
    #: touch (e.g. ``asyncio.gather`` runs a done-callback in one pass
    #: and resumes the awaiting task in the next), so a single quiet
    #: pass can race ahead of a wake-up chain still in flight.  The
    #: chain depth is bounded by the awaiter nesting in the code, not
    #: the workload, so a small fixed budget keeps this deterministic.
    _GRACE_PASSES = 10

    async def _quiesce(self) -> None:
        """Yield until consecutive event-loop passes produce no activity."""
        quiet = 0
        while quiet < self._GRACE_PASSES:
            before = self._activity
            await asyncio.sleep(0)
            quiet = quiet + 1 if self._activity == before else 0

    async def run_until(self, main) -> Any:
        """Drive ``main`` to completion, advancing virtual time as needed.

        While the driver runs, this clock registers itself as the
        observability time source (:func:`repro.obs.tracer.activate_clock`),
        so every span opened inside the simulation is stamped with
        simulated seconds — traces of same-seed runs are byte-identical.
        """
        task = asyncio.ensure_future(main)
        activate_clock(self)
        try:
            while not task.done():
                await self._quiesce()
                if task.done():
                    break
                if not self._heap:
                    task.cancel()
                    raise ServeError(
                        "simulation deadlock: every coroutine is blocked "
                        "and no timer is pending (a queue hand-off is "
                        "missing its producer or consumer)"
                    )
                self._fire_next()
        finally:
            deactivate_clock(self)
            if not task.done():
                task.cancel()
        return task.result()

    def run(self, main) -> Any:
        """``asyncio.run`` the coroutine under this clock's driver."""
        return asyncio.run(self.run_until(main))
