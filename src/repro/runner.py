"""Parallel sweep runner with timing-cache write-back.

Design-space sweeps (architecture what-ifs, bitwidth sweeps, strategy
pricings) are embarrassingly parallel *and* cache-friendly: every point
builds a :class:`~repro.perfmodel.PerformanceModel` and prices kernels
that land in the persistent
:class:`~repro.perfmodel.timingcache.TimingCache`.  :func:`run_sweep`
fans the points across processes (via :func:`repro.utils.parallel.sweep`)
and measures, per point, the wall time, the number of fresh
:class:`~repro.sim.smsim.SubPartitionSim` runs, and the cache hit/miss
delta — workers share the on-disk cache directory, so one worker's
simulation is every later run's cache hit (write-back).

Workers must be module-level functions and points picklable (they cross
a process boundary); see :func:`price_inference_strategies` for the
canonical example.  ``processes=1`` runs serially in-process, which is
what the benchmarks use under coverage.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.arch.registry import resolve_backend
from repro.arch.specs import MachineSpec
from repro.fusion.strategies import Strategy
from repro.perfmodel.model import PerformanceModel
from repro.perfmodel.timingcache import TimingCache
from repro.sim.smsim import SubPartitionSim
from repro.utils.parallel import default_processes, sweep

__all__ = [
    "PointOutcome",
    "SweepReport",
    "run_sweep",
    "price_inference_strategies",
]

P = TypeVar("P")


@dataclass(frozen=True)
class PointOutcome:
    """One sweep point's result plus its measured cost."""

    label: str
    value: object
    seconds: float
    simulations: int
    cache_hits: int
    cache_misses: int


@dataclass
class SweepReport:
    """Aggregated outcome of one :func:`run_sweep` call."""

    label: str
    outcomes: list[PointOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    processes: int = 1

    @property
    def values(self) -> list:
        """Per-point worker return values, in input order."""
        return [o.value for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        """Timing-cache hits summed over all points."""
        return sum(o.cache_hits for o in self.outcomes)

    @property
    def cache_misses(self) -> int:
        """Timing-cache misses summed over all points."""
        return sum(o.cache_misses for o in self.outcomes)

    @property
    def simulations(self) -> int:
        """Fresh sub-partition simulations summed over all points."""
        return sum(o.simulations for o in self.outcomes)

    @property
    def hit_rate(self) -> float:
        """Cache hits over lookups (0.0 when nothing was looked up)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def render(self) -> str:
        """Human-readable summary table."""
        from repro.utils.tables import format_table

        rows = [
            (o.label, o.seconds * 1e3, o.simulations, o.cache_hits, o.cache_misses)
            for o in self.outcomes
        ]
        rows.append(
            (
                "TOTAL",
                self.wall_seconds * 1e3,
                self.simulations,
                self.cache_hits,
                self.cache_misses,
            )
        )
        return format_table(
            ["point", "wall (ms)", "sims", "cache hits", "misses"],
            rows,
            title=f"{self.label} — {self.processes} process(es), "
            f"hit rate {self.hit_rate:.0%}",
            ndigits=1,
        )


def _measure_point(worker: Callable, labeled_point: tuple) -> tuple:
    """Run ``worker`` on one point, measuring cost (executes in the
    worker process; counters are process-local deltas)."""
    label, point = labeled_point
    cache = TimingCache.default()
    before = cache.stats()
    sims_before = SubPartitionSim.invocations
    t0 = time.perf_counter()
    value = worker(point)
    dt = time.perf_counter() - t0
    after = cache.stats()
    return (
        label,
        value,
        dt,
        SubPartitionSim.invocations - sims_before,
        after.hits - before.hits,
        after.misses - before.misses,
    )


def run_sweep(
    worker: Callable[[P], object],
    points: Sequence[P] | Iterable[P],
    *,
    labels: Sequence[str] | None = None,
    processes: int | None = None,
    label: str = "sweep",
) -> SweepReport:
    """Evaluate ``worker`` on every point in parallel, with metering.

    Results preserve input order.  ``worker`` must be a module-level
    function (pickled to the workers); simulations performed by one
    point are written back to the shared on-disk timing cache, so
    other points — and future runs — hit instead of simulating.
    """
    pts = list(points)
    names = (
        [str(x) for x in labels]
        if labels is not None
        else [f"point {i}" for i in range(len(pts))]
    )
    if len(names) != len(pts):
        raise ValueError(
            f"{len(names)} labels for {len(pts)} points"
        )
    n = processes if processes is not None else default_processes()
    t0 = time.perf_counter()
    raw = sweep(
        functools.partial(_measure_point, worker),
        list(zip(names, pts)),
        processes=n,
    )
    wall = time.perf_counter() - t0
    outcomes = [
        PointOutcome(
            label=lbl,
            value=value,
            seconds=dt,
            simulations=sims,
            cache_hits=hits,
            cache_misses=misses,
        )
        for lbl, value, dt, sims, hits, misses in raw
    ]
    _publish_sweep_metrics(outcomes, wall)
    return SweepReport(
        label=label,
        outcomes=outcomes,
        wall_seconds=wall,
        processes=min(n, max(1, len(pts))),
    )


def _publish_sweep_metrics(outcomes: "list[PointOutcome]", wall: float) -> None:
    """Fold per-point sweep costs into the process-wide registry.

    Workers run in separate processes, so their registries are lost;
    the parent republishes the measured deltas each point reported —
    the same numbers :class:`SweepReport` aggregates.
    """
    point_seconds = obs.histogram(
        "sweep_point_seconds",
        "wall-clock seconds per sweep point (worker-measured)",
        buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0),
    )
    for o in outcomes:
        point_seconds.observe(o.seconds)
        obs.counter(
            "sweep_simulations_total",
            "fresh sub-partition simulations across sweep points",
        ).inc(o.simulations)
        obs.counter(
            "sweep_cache_hits_total",
            "timing-cache hits across sweep points",
        ).inc(o.cache_hits)
        obs.counter(
            "sweep_cache_misses_total",
            "timing-cache misses across sweep points",
        ).inc(o.cache_misses)
    obs.counter("sweep_points_total", "sweep points evaluated").inc(
        len(outcomes)
    )
    obs.gauge(
        "sweep_last_wall_seconds",
        "wall-clock seconds of the most recent sweep",
    ).set(wall)


def _price_strategy(point: tuple) -> dict:
    """Worker: price one inference strategy (module-level, picklable).

    Runs with ``clamp_ratio=True``: one odd calibration point (CUDA
    probe faster than the Tensor probe) degrades that GEMM to an even
    m=1 split with a recorded warning instead of aborting the whole
    sweep from inside the worker.  The clamp changes nothing when the
    split rule applies, so ordinary sweeps are bit-identical to strict.
    """
    from repro.vit.runtime import time_inference
    from repro.vit.zoo import model_config

    machine, strategy, model_name, batch = point
    if isinstance(machine, str):
        machine = resolve_backend(machine)
    pm = PerformanceModel(machine, clamp_ratio=True)
    timing = time_inference(
        pm, strategy, config=model_config(model_name), batch=batch
    )
    return {
        "strategy": strategy.name,
        "total_seconds": timing.total_seconds,
        "gemm_seconds": timing.gemm_seconds,
        "elementwise_seconds": timing.elementwise_seconds,
        "kernel_launches": timing.kernel_launches,
        "per_kernel": timing.per_kernel,
    }


def price_inference_strategies(
    machine: MachineSpec | str,
    strategies: Sequence[Strategy],
    *,
    model_name: str = "vit-base",
    batch: int = 8,
    processes: int | None = None,
) -> SweepReport:
    """Price a full inference under every strategy, one per worker.

    The Fig. 5 workload, parallelized: each strategy's kernel stream is
    priced in its own process against the shared timing cache.
    ``machine`` may be a registered backend *name* (resolved inside each
    worker — only the short string crosses the process boundary).
    """
    if isinstance(machine, str):
        resolve_backend(machine)  # fail fast on typos, in the parent
    return run_sweep(
        _price_strategy,
        [(machine, s, model_name, batch) for s in strategies],
        labels=[s.name for s in strategies],
        processes=processes,
        label=f"inference pricing — {model_name} @ batch {batch}",
    )
