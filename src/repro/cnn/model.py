"""A small integer-only ConvNet and its kernel workload.

Three conv-ReLU(-pool) stages plus a linear classifier — the shape of
the embedded CNNs (CIFAR-class) the paper's intro gestures at.  All
parameters are synthetic with range-preserving scales, like the ViT;
the model exists to prove the packing/fusion machinery is not
ViT-specific and to give the performance model a second kernel stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cnn.ops import int_conv2d, int_maxpool2d, int_relu
from repro.errors import ModelConfigError
from repro.formats.quantize import DyadicScale, dyadic_approximate
from repro.perfmodel.descriptors import GemmShape
from repro.utils.rng import make_rng
from repro.vit.layers import GemmExecutor
from repro.vit.workload import KernelWork

__all__ = ["IntConvNet", "convnet_workload"]


@dataclass
class _ConvLayer:
    weight: np.ndarray
    bias: np.ndarray
    out_scale: DyadicScale
    stride: int
    pad: int
    pool: int  # 0 = no pooling


@dataclass
class IntConvNet:
    """Integer ConvNet: conv/ReLU/pool stages + a linear head."""

    image_size: int
    in_channels: int
    zero_point: int
    layers: list[_ConvLayer]
    head_weight: np.ndarray
    head_bias: np.ndarray

    @staticmethod
    def create(
        image_size: int = 32,
        in_channels: int = 3,
        channels: tuple[int, ...] = (16, 32, 64),
        num_classes: int = 10,
        seed: int | None = None,
    ) -> "IntConvNet":
        """Build with synthetic calibrated int8 weights."""
        if image_size % (2 ** len(channels)):
            raise ModelConfigError(
                f"image size {image_size} must be divisible by "
                f"{2 ** len(channels)} (one 2x pool per stage)"
            )
        rng = make_rng(seed)
        zp = 128
        layers = []
        c_in = in_channels
        for c_out in channels:
            w = rng.integers(-127, 128, size=(c_out, c_in, 3, 3), dtype=np.int64)
            bias = rng.integers(-1024, 1024, size=c_out, dtype=np.int64)
            acc_sigma = 64.0 * 64.0 * np.sqrt(c_in * 9)
            layers.append(
                _ConvLayer(
                    weight=w,
                    bias=bias,
                    out_scale=dyadic_approximate(127.0 / (2.5 * acc_sigma)),
                    stride=1,
                    pad=1,
                    pool=2,
                )
            )
            c_in = c_out
        side = image_size // (2 ** len(channels))
        feat = channels[-1] * side * side
        head_w = rng.integers(-127, 128, size=(num_classes, feat), dtype=np.int64)
        head_b = rng.integers(-1024, 1024, size=num_classes, dtype=np.int64)
        return IntConvNet(
            image_size=image_size,
            in_channels=in_channels,
            zero_point=zp,
            layers=layers,
            head_weight=head_w,
            head_bias=head_b,
        )

    def forward(self, images: np.ndarray, executor: GemmExecutor) -> np.ndarray:
        """uint8 (B, C, H, W) images -> int64 logits (classes, B)."""
        imgs = np.asarray(images)
        if imgs.ndim != 4 or imgs.shape[1] != self.in_channels:
            raise ModelConfigError(
                f"expected (B, {self.in_channels}, {self.image_size}, "
                f"{self.image_size}), got {imgs.shape}"
            )
        zp = self.zero_point
        outs = []
        for b in range(imgs.shape[0]):
            x = imgs[b].astype(np.int64)
            for layer in self.layers:
                x = int_conv2d(
                    x, layer.weight, layer.bias, layer.out_scale, executor,
                    zero_point=zp, stride=layer.stride, pad=layer.pad,
                )
                x = int_relu(x, zero_point=zp)
                if layer.pool:
                    x = int_maxpool2d(x, layer.pool)
            flat = x.reshape(-1, 1)  # (feat, 1) stored column
            logits = executor.gemm(self.head_weight, flat, b_zero_point=zp)
            outs.append(logits[:, 0] + self.head_bias)
        return np.stack(outs, axis=1)


def convnet_workload(
    image_size: int = 32,
    in_channels: int = 3,
    channels: tuple[int, ...] = (16, 32, 64),
    num_classes: int = 10,
    batch: int = 8,
) -> list[KernelWork]:
    """The ConvNet's kernel stream for the performance model.

    Each conv is a GEMM of shape (OC, OH*OW*batch, C*9); ReLU and
    pooling map onto the requantize/residual elementwise descriptors
    (comparable mixes: clamp + select per element).
    """
    if batch < 1:
        raise ModelConfigError("batch must be >= 1")
    work: list[KernelWork] = []
    side = image_size
    c_in = in_channels
    for i, c_out in enumerate(channels):
        n = side * side * batch
        work.append(
            KernelWork(
                f"conv{i}", "gemm", "T",
                gemm=GemmShape(c_out, n, c_in * 9, name=f"conv{i}"),
            )
        )
        work.append(
            KernelWork(
                f"relu{i}", "elementwise", "C", elementwise="requantize",
                n_elements=c_out * n,
            )
        )
        side //= 2
        work.append(
            KernelWork(
                f"pool{i}", "elementwise", "C", elementwise="residual",
                n_elements=c_out * side * side * batch,
            )
        )
        c_in = c_out
    feat = channels[-1] * side * side
    work.append(
        KernelWork(
            "head", "gemm", "T", fusable=False,
            gemm=GemmShape(num_classes, batch, feat, name="cnn_head"),
        )
    )
    return work
