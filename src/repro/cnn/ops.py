"""Integer CNN operators in the stored-uint8 activation domain.

Layout conventions match :mod:`repro.vit`: activations are stored
unsigned with a zero point (semantic = stored - zp); weights are
signed symmetric; convolutions lower to GEMMs whose B matrix columns
are im2col patches — non-negative, so Algorithm 1 packs them directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError
from repro.formats.quantize import DyadicScale
from repro.kernels.elementwise import requantize
from repro.utils.validation import check_dtype_integer
from repro.vit.layers import GemmExecutor

__all__ = ["im2col", "int_conv2d", "int_relu", "int_maxpool2d", "int_avgpool2d"]


def _out_size(size: int, k: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - k) // stride + 1
    if out < 1:
        raise ModelConfigError(
            f"kernel {k}/stride {stride}/pad {pad} does not fit size {size}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, *, stride: int = 1, pad: int = 0,
    pad_value: int = 0,
) -> np.ndarray:
    """(C, H, W) stored activations -> (C*kh*kw, OH*OW) patch matrix.

    Column ``j`` holds the receptive field of output pixel ``j``
    (row-major over the output grid); padding uses ``pad_value`` (the
    activation zero point, so padding is semantic zero).
    """
    check_dtype_integer("x", x)
    arr = np.asarray(x, dtype=np.int64)
    if arr.ndim != 3:
        raise ModelConfigError(f"im2col expects (C, H, W), got {arr.shape}")
    c, h, w = arr.shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    padded = np.full((c, h + 2 * pad, w + 2 * pad), pad_value, dtype=np.int64)
    padded[:, pad : pad + h, pad : pad + w] = arr
    # Gather windows: shape (C, kh, kw, OH, OW) via strided indexing.
    i0 = np.arange(oh) * stride
    j0 = np.arange(ow) * stride
    windows = np.empty((c, kh, kw, oh, ow), dtype=np.int64)
    for di in range(kh):
        for dj in range(kw):
            windows[:, di, dj] = padded[:, i0[:, None] + di, j0[None, :] + dj]
    return windows.reshape(c * kh * kw, oh * ow)


def int_conv2d(
    x_stored: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    out_scale: DyadicScale,
    executor: GemmExecutor,
    *,
    zero_point: int = 128,
    stride: int = 1,
    pad: int = 0,
    out_bound: int = 127,
) -> np.ndarray:
    """Integer conv2d via im2col + the strategy executor's GEMM.

    ``x_stored`` is (C, H, W) stored uint8; ``weight`` is
    (OC, C, kh, kw) signed; output is (OC, OH, OW) stored uint8.
    Padding uses the zero point, so it contributes exactly zero after
    the zero-point correction — the same invariant as real quantized
    inference engines.
    """
    check_dtype_integer("weight", weight)
    w = np.asarray(weight, dtype=np.int64)
    if w.ndim != 4:
        raise ModelConfigError(f"weight must be (OC, C, kh, kw), got {w.shape}")
    oc, c, kh, kw = w.shape
    if np.asarray(x_stored).shape[0] != c:
        raise ModelConfigError(
            f"input has {np.asarray(x_stored).shape[0]} channels, weight wants {c}"
        )
    cols = im2col(x_stored, kh, kw, stride=stride, pad=pad, pad_value=zero_point)
    a = w.reshape(oc, c * kh * kw)
    acc = executor.gemm(a, cols, b_zero_point=zero_point)
    acc = acc + np.asarray(bias, dtype=np.int64)[:, None]
    out = requantize(acc, out_scale, out_min=-out_bound, out_max=out_bound)
    h = np.asarray(x_stored).shape[1]
    ww = np.asarray(x_stored).shape[2]
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(ww, kw, stride, pad)
    return (out + zero_point).reshape(oc, oh, ow)


def int_relu(x_stored: np.ndarray, *, zero_point: int = 128) -> np.ndarray:
    """ReLU in the stored domain: clamp below the zero point."""
    check_dtype_integer("x_stored", x_stored)
    return np.maximum(np.asarray(x_stored, dtype=np.int64), zero_point)


def _pool(x: np.ndarray, k: int, stride: int, reducer) -> np.ndarray:
    arr = np.asarray(x, dtype=np.int64)
    if arr.ndim != 3:
        raise ModelConfigError(f"pooling expects (C, H, W), got {arr.shape}")
    c, h, w = arr.shape
    oh = _out_size(h, k, stride, 0)
    ow = _out_size(w, k, stride, 0)
    out = np.empty((c, oh, ow), dtype=np.int64)
    for i in range(oh):
        for j in range(ow):
            window = arr[:, i * stride : i * stride + k, j * stride : j * stride + k]
            out[:, i, j] = reducer(window.reshape(c, -1), axis=1)
    return out


def int_maxpool2d(x_stored: np.ndarray, k: int = 2, *, stride: int | None = None) -> np.ndarray:
    """Max pooling (order-preserving, so the stored domain is fine)."""
    check_dtype_integer("x_stored", x_stored)
    return _pool(x_stored, k, stride if stride is not None else k, np.max)


def int_avgpool2d(x_stored: np.ndarray, k: int = 2, *, stride: int | None = None) -> np.ndarray:
    """Average pooling with floor division (integer-only)."""
    check_dtype_integer("x_stored", x_stored)

    def mean_floor(block: np.ndarray, axis: int) -> np.ndarray:
        return np.sum(block, axis=axis) // block.shape[axis]

    return _pool(x_stored, k, stride if stride is not None else k, mean_floor)
