"""Integer-only convolutional networks (a second workload family).

The paper evaluates on ViT-Base, but its technique is framed for "AI
workloads" generally; the classic embedded workload is a quantized CNN.
This package lowers integer convolutions to the same GEMM machinery the
ViT uses (im2col: each output pixel's receptive field becomes a column
of B — non-negative stored activations, exactly what operand packing
wants), so every Table 3 strategy, the packed GEMM, and the performance
model apply unchanged.

* :mod:`repro.cnn.ops` — im2col, conv-as-GEMM, ReLU, pooling, all in
  the stored-uint8 activation domain;
* :mod:`repro.cnn.model` — a small integer ConvNet with synthetic
  calibrated weights + its kernel workload for the performance model.
"""

from repro.cnn.ops import im2col, int_avgpool2d, int_conv2d, int_maxpool2d, int_relu
from repro.cnn.model import IntConvNet, convnet_workload

__all__ = [
    "im2col",
    "int_conv2d",
    "int_relu",
    "int_maxpool2d",
    "int_avgpool2d",
    "IntConvNet",
    "convnet_workload",
]
