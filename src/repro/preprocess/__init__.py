"""VitBit data preprocessing (Sec. 3.2, Algorithm 1).

Splits the input matrix B column-wise into the three slices consumed by
the fused kernel — B1 (packed integers, INT cores), B2 (converted to
floating point, FP cores), B3 (zero-masked integers, Tensor cores) —
and duplicates the weight matrix A in INT and FP formats.
"""

from repro.preprocess.split import SplitPlan, SplitMatrices, plan_split, split_matrix
from repro.preprocess.convert import (
    duplicate_weights,
    int_to_float_exact,
    restore_outputs,
)
from repro.preprocess.pipeline import (
    PreprocessResult,
    estimate_preprocess_seconds,
    preprocess_input,
)

__all__ = [
    "SplitPlan",
    "SplitMatrices",
    "plan_split",
    "split_matrix",
    "duplicate_weights",
    "int_to_float_exact",
    "restore_outputs",
    "PreprocessResult",
    "preprocess_input",
    "estimate_preprocess_seconds",
]
