"""Type conversions of the preprocessing stage (Algorithm 1 + Sec. 3.2).

* :func:`duplicate_weights` — Step 1: the INT filter matrix A is
  duplicated as A1 (integer) and A2 (float32 carrying the same
  fixed-point values), done once at model-load time;
* :func:`int_to_float_exact` — the checked int → float32 conversion
  used for the B2 slice;
* :func:`restore_outputs` — reassembles a full output matrix from the
  per-pipe partial outputs after a fused GEMM.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SplitError
from repro.preprocess.split import SplitPlan
from repro.utils.validation import check_dtype_integer, check_shape_2d

__all__ = ["duplicate_weights", "int_to_float_exact", "restore_outputs"]

#: Largest integer magnitude float32 represents exactly (2**24).
_FP32_EXACT_LIMIT = 1 << 24


def int_to_float_exact(values: np.ndarray) -> np.ndarray:
    """Cast integers to float32, refusing values that would round.

    The paper's correctness rests on int8 -> FP32 being lossless; this
    guard turns a silent precision bug into a hard error if a caller
    ever pushes 25-bit-plus integers down the FP path.
    """
    check_dtype_integer("values", values)
    arr = np.asarray(values, dtype=np.int64)
    if arr.size and int(np.max(np.abs(arr))) > _FP32_EXACT_LIMIT:
        raise SplitError(
            "integer magnitudes exceed float32's exact range (2**24); "
            "the FP CUDA-core slice would silently round"
        )
    return arr.astype(np.float32)


def duplicate_weights(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Step 1: produce (A1 int64, A2 float32) views of the weight matrix.

    Done once per model load; the paper counts this as negligible
    one-time overhead.
    """
    check_dtype_integer("a", a)
    check_shape_2d("a", a)
    a1 = np.asarray(a, dtype=np.int64)
    a2 = int_to_float_exact(a1)
    return a1, a2


def restore_outputs(
    c1: np.ndarray, c2: np.ndarray, c3: np.ndarray, plan: SplitPlan
) -> np.ndarray:
    """Concatenate per-pipe GEMM outputs back into one (M, N) int64 matrix.

    ``c1`` comes from the INT pipe (already unpacked to int64 columns),
    ``c2`` from the FP pipe (float32, integer-valued — converted back
    exactly), ``c3`` from the Tensor cores.
    """
    c1a = np.asarray(c1)
    c2a = np.asarray(c2)
    c3a = np.asarray(c3)
    if c1a.shape[1] != plan.n1 or c2a.shape[1] != plan.n2 or c3a.shape[1] != plan.n3:
        raise SplitError(
            f"output slices {c1a.shape[1]}/{c2a.shape[1]}/{c3a.shape[1]} do not "
            f"match plan {plan.n1}/{plan.n2}/{plan.n3}"
        )
    if np.issubdtype(c2a.dtype, np.floating):
        c2_int = np.rint(c2a).astype(np.int64)
        if c2a.size and not np.array_equal(c2_int.astype(c2a.dtype), c2a):
            raise SplitError("FP-pipe outputs are not integer-valued")
    else:
        c2_int = c2a.astype(np.int64)
    return np.concatenate(
        [c1a.astype(np.int64), c2_int, c3a.astype(np.int64)], axis=1
    )
