"""End-to-end preprocessing driver with overhead accounting.

Bundles Algorithm 1 (planning, slicing, packing, conversion) into one
call and records the byte volumes touched, so the overhead analysis of
Sec. 3.2 ("input conversion is < 1% of inference time") can be checked
quantitatively by the benchmarks rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.packing.policy import PackingPolicy
from repro.preprocess.split import SplitMatrices, SplitPlan, plan_split, split_matrix

__all__ = ["PreprocessResult", "preprocess_input"]


@dataclass
class PreprocessResult:
    """Split matrices plus the work accounting of producing them."""

    matrices: SplitMatrices
    plan: SplitPlan
    elements_packed: int
    elements_converted: int
    elements_passthrough: int

    @property
    def bytes_touched(self) -> int:
        """Bytes read+written by preprocessing (1B int8 in; 4B reg/float out)."""
        read = self.plan.n_total  # one byte per int8 element per row
        written = (
            self.plan.n1_registers * 4 + self.plan.n2 * 4 + self.plan.n3
        )
        rows = self.matrices.b1_raw.shape[0] if self.matrices.b1_raw.ndim == 2 else 0
        return (read + written) * rows


def estimate_preprocess_seconds(
    result: PreprocessResult,
    *,
    cpu_bandwidth_gbps: float = 40.0,
    per_element_ns: float = 0.2,
) -> float:
    """CPU-side cost estimate of one preprocessing pass (Sec. 3.2).

    The paper argues input conversion is "less than 1% of the inference
    time"; this estimate makes the claim checkable against the
    simulated inference: memory traffic plus a per-element shift/mask
    budget for the packed and converted slices (pass-through elements
    only pay the copy).  Defaults assume the conversion is parallelized
    across the Orin's 8 Cortex-A78 cores with NEON (multi-core stream
    bandwidth, vectorized shifts); a naive single-core NumPy pass runs
    several times slower, which the overhead benchmark reports
    alongside the estimate.
    """
    if cpu_bandwidth_gbps <= 0 or per_element_ns < 0:
        raise ValueError("bandwidth must be positive, per-element cost >= 0")
    traffic = result.bytes_touched / (cpu_bandwidth_gbps * 1e9)
    compute = (
        (result.elements_packed + result.elements_converted)
        * per_element_ns
        * 1e-9
    )
    return traffic + compute


def preprocess_input(
    b: np.ndarray,
    tensor_cuda_ratio: float,
    policy: PackingPolicy,
    *,
    int_fp_ratio: int | None = None,
) -> PreprocessResult:
    """Run Algorithm 1 on input matrix ``b`` (K x N, non-negative ints).

    Returns the three slices plus accounting.  See
    :func:`repro.preprocess.split.plan_split` for parameter semantics.
    """
    arr = np.asarray(b)
    plan = plan_split(
        arr.shape[1], tensor_cuda_ratio, policy, int_fp_ratio=int_fp_ratio
    )
    matrices = split_matrix(arr, plan, policy)
    rows = arr.shape[0]
    return PreprocessResult(
        matrices=matrices,
        plan=plan,
        elements_packed=plan.n1 * rows,
        elements_converted=plan.n2 * rows,
        elements_passthrough=plan.n3 * rows,
    )
