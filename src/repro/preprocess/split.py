"""Algorithm 1: column-wise splitting of the input matrix.

The paper splits matrix B (the GEMM input) by *width*:

* ``N3 = N * m / (1 + m)`` columns go to the Tensor cores,
* of the remaining CUDA-core columns, ``n : 1`` go to the INT and FP
  pipes (Eq. 1: packing n values per register makes the INT pipe
  retire n columns per instruction, so giving it n times the data
  equalizes the two pipes' *instruction* counts),
* the INT slice is then packed ``n``-wide.

We keep the paper's variable names (m = Tensor/CUDA ratio, n = INT/FP
ratio = packing factor) and convention that splitting happens along the
output-column axis.  All rounding respects register-group granularity:
N1 is forced to a multiple of the packing lane count so no register
straddles the B1/B2 boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SplitError
from repro.packing.packer import Packer
from repro.packing.policy import PackingPolicy
from repro.utils.validation import check_dtype_integer, check_shape_2d

__all__ = ["SplitPlan", "SplitMatrices", "plan_split", "split_matrix"]


@dataclass(frozen=True)
class SplitPlan:
    """Column counts for the B1/B2/B3 slices of an N-column matrix.

    ``n1`` columns feed the INT pipe (packed into ``n1 // lanes``
    register groups), ``n2`` the FP pipe, ``n3`` the Tensor cores;
    ``n1 + n2 + n3 == n_total``.
    """

    n_total: int
    n1: int
    n2: int
    n3: int
    tensor_cuda_ratio: float
    int_fp_ratio: int
    lanes: int

    def __post_init__(self) -> None:
        if min(self.n1, self.n2, self.n3) < 0:
            raise SplitError(f"negative slice width in {self}")
        if self.n1 + self.n2 + self.n3 != self.n_total:
            raise SplitError(
                f"slices {self.n1}+{self.n2}+{self.n3} != total {self.n_total}"
            )
        if self.lanes >= 1 and self.n1 % self.lanes:
            raise SplitError(
                f"INT slice of {self.n1} columns is not a multiple of "
                f"{self.lanes} packing lanes"
            )

    @property
    def n1_registers(self) -> int:
        """Packed register groups holding the INT slice."""
        return self.n1 // self.lanes if self.lanes else 0

    @property
    def cuda_columns(self) -> int:
        """Columns handled by CUDA cores (INT + FP)."""
        return self.n1 + self.n2


@dataclass
class SplitMatrices:
    """The three slices of B after Algorithm 1.

    ``b1_packed`` is uint32 (K x n1/lanes); ``b1_raw`` keeps the
    unpacked INT slice for verification; ``b2`` is float32; ``b3`` is
    the Tensor-core INT slice (int64 payloads, conceptually zero-masked
    into 32-bit registers).
    """

    plan: SplitPlan
    b1_packed: np.ndarray
    b1_raw: np.ndarray
    b2: np.ndarray
    b3: np.ndarray


def plan_split(
    n_total: int,
    tensor_cuda_ratio: float,
    policy: PackingPolicy,
    *,
    int_fp_ratio: int | None = None,
) -> SplitPlan:
    """Compute slice widths (Algorithm 1 lines 3-6).

    ``tensor_cuda_ratio`` is the paper's ``m`` (4 in their study: Tensor
    cores get m columns for every CUDA-core column).  ``int_fp_ratio``
    is the paper's ``n`` and defaults to the packing factor
    ``policy.lanes`` per Eq. 1.  ``m = 0`` models a CUDA-core-only
    kernel; a huge ``m`` degenerates to Tensor-only.
    """
    if n_total < 0:
        raise SplitError(f"matrix width must be >= 0, got {n_total}")
    if tensor_cuda_ratio < 0:
        raise SplitError(f"tensor/CUDA ratio must be >= 0, got {tensor_cuda_ratio}")
    n = int_fp_ratio if int_fp_ratio is not None else policy.lanes
    if n < 0:
        raise SplitError(f"INT/FP ratio must be >= 0, got {n}")

    m = tensor_cuda_ratio
    n3 = int(round(n_total * m / (1.0 + m)))
    cuda = n_total - n3
    if n == 0:  # FP-only CUDA slice
        n1 = 0
    else:
        n1 = int(round(cuda * n / (1.0 + n)))
        n1 -= n1 % policy.lanes  # keep register groups intact
    n2 = cuda - n1
    return SplitPlan(
        n_total=n_total,
        n1=n1,
        n2=n2,
        n3=n3,
        tensor_cuda_ratio=m,
        int_fp_ratio=n,
        lanes=policy.lanes,
    )


def split_matrix(
    b: np.ndarray, plan: SplitPlan, policy: PackingPolicy
) -> SplitMatrices:
    """Slice and convert B per ``plan`` (Algorithm 1 lines 7-35).

    ``b`` is (K, N) with non-negative entries fitting the policy's lane
    bitwidth (activations are zero-point offset upstream).  Columns
    ``[0, n1)`` are packed, ``[n1, n1+n2)`` cast to float32 (exact for
    <= 24-bit integers), and the rest passed through for Tensor cores.
    """
    check_dtype_integer("b", b)
    check_shape_2d("b", b)
    arr = np.asarray(b, dtype=np.int64)
    if arr.shape[1] != plan.n_total:
        raise SplitError(
            f"matrix has {arr.shape[1]} columns but plan covers {plan.n_total}"
        )
    if plan.lanes != policy.lanes:
        raise SplitError("plan was computed for a different packing policy")

    b1_raw = arr[:, : plan.n1]
    b2_raw = arr[:, plan.n1 : plan.n1 + plan.n2]
    b3 = arr[:, plan.n1 + plan.n2 :]

    packer = Packer(policy)
    b1_packed = (
        packer.pack(b1_raw) if plan.n1 else np.zeros((arr.shape[0], 0), dtype=np.uint32)
    )
    b2 = b2_raw.astype(np.float32)
    if b2.size and not np.array_equal(b2.astype(np.int64), b2_raw):
        raise SplitError(
            "float conversion of the B2 slice is not exact; values exceed "
            "the FP32 24-bit integer window"
        )
    return SplitMatrices(plan=plan, b1_packed=b1_packed, b1_raw=b1_raw, b2=b2, b3=b3)
