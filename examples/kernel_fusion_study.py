"""Reproduce Sec. 3.2's initial study and explore the fusion design space.

Shows, on the simulated Jetson AGX Orin:

1. the five-case GEMM study (TC / IC / FC / IC+FC / IC+FC+P) that
   motivates the 4:1 Tensor:CUDA assignment,
2. a sweep of the assignment ratio m, locating the optimum,
3. what warp-level INT/FP interleaving (Sec. 3.3) is worth,
4. the per-pipe utilization picture before/after fusion.

Run:  python examples/kernel_fusion_study.py [--batch 8]
"""

from __future__ import annotations

import argparse

from repro.arch import jetson_orin_agx
from repro.fusion import FC, IC, IC_FC, TC, VITBIT
from repro.fusion.strategies import Strategy
from repro.perfmodel import CostParams, GemmShape, PerformanceModel
from repro.sim.instruction import OpClass
from repro.utils.tables import format_series, format_table

IC_FC_P = Strategy(
    "IC+FC+P", False, True, True, True, "C", "both CUDA pipes with packing"
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=8)
    args = parser.parse_args()

    machine = jetson_orin_agx()
    pm = PerformanceModel(machine, include_launch_overhead=False)
    shape = GemmShape(768, 197 * args.batch, 768, name="proj")

    # 1. The five-case study.
    t_tc = pm.time_gemm(shape, TC).seconds
    rows = [("TC", 1.0, 1.0)]
    paper = {"IC": 7.5, "FC": 7.5, "IC+FC": 6.5, "IC+FC+P": 4.0}
    for s in (IC, FC, IC_FC, IC_FC_P):
        rows.append((s.name, pm.time_gemm(shape, s).seconds / t_tc, paper[s.name]))
    print(format_table(
        ["case", "model (x TC)", "paper (x TC)"], rows,
        title=f"Sec. 3.2 initial study — GEMM {shape.label()}", ndigits=2,
    ))
    m = pm.determine_tensor_cuda_ratio(shape, IC_FC_P)
    print(f"\nmeasured-time rule selects m = {m} (paper: 4)\n")

    # 2. Ratio sweep.
    ms = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0]
    speedups = [
        t_tc / pm.time_gemm(shape, VITBIT, tensor_cuda_ratio=v).seconds for v in ms
    ]
    print(format_series(
        "VitBit speedup vs TC across the Tensor:CUDA ratio m",
        [f"m={v:g}" for v in ms], speedups,
    ))

    # 3. Warp interleaving ablation.
    pm_block = PerformanceModel(
        machine, params=CostParams(alternate_warps=False),
        include_launch_overhead=False,
    )
    t_alt = pm.time_gemm(shape, IC_FC_P).seconds
    t_blk = pm_block.time_gemm(shape, IC_FC_P).seconds
    print(f"\nwarp-level INT/FP interleaving (Sec. 3.3): alternating "
          f"{t_alt * 1e6:.1f}us vs contiguous {t_blk * 1e6:.1f}us "
          f"({t_blk / t_alt:.2f}x slower without it)")

    # 4. Pipe utilization before/after.
    solo = pm.time_gemm(shape, IC)
    fused = pm.time_gemm(shape, VITBIT)
    print("\npipe utilization (fraction of kernel time busy):")
    for name, kt in (("IC", solo), ("VitBit", fused)):
        util = {
            op.name: round(kt.pipe_utilization.get(op, 0.0), 2)
            for op in (OpClass.INT, OpClass.FP, OpClass.TENSOR, OpClass.LSU)
        }
        print(f"  {name:7s} {util}")


if __name__ == "__main__":
    main()
