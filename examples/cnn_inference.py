"""VitBit on a second workload family: integer-only CNNs.

The paper evaluates ViT-Base; this example applies the identical
machinery (Algorithm 1 splitting, packed GEMMs, Algorithm 2 fusion) to
quantized convolutional networks lowered through im2col, and shows
where the technique pays: fat ImageNet-class conv GEMMs gain, tiny
CIFAR-class ones are launch/memory bound and do not.

Run:  python examples/cnn_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import jetson_orin_agx
from repro.cnn import IntConvNet, convnet_workload
from repro.fusion import TACKER, TC, TC_IC_FC, VITBIT
from repro.perfmodel import PerformanceModel
from repro.utils.rng import make_rng
from repro.utils.tables import format_table
from repro.vit import time_inference
from repro.vit.layers import GemmExecutor


def main() -> None:
    # Functional: the packed/fused path is bit-exact on convolutions too.
    net = IntConvNet.create(seed=9)
    rng = make_rng(42)
    images = rng.integers(0, 256, size=(2, 3, 32, 32))
    ref = net.forward(images, GemmExecutor(None))
    got = net.forward(images, GemmExecutor(VITBIT))
    print("integer CNN, VitBit fused inference bit-exact:",
          bool(np.array_equal(ref, got)))
    print("predicted classes:", np.argmax(ref, axis=0).tolist())

    # Performance: where does VitBit pay on CNNs?
    pm = PerformanceModel(jetson_orin_agx())
    configs = {
        "CIFAR-class  (3x32x32, 16/32/64 ch)": dict(
            image_size=32, channels=(16, 32, 64)
        ),
        "ImageNet-class (3x64x64, 128/256/512 ch)": dict(
            image_size=64, channels=(128, 256, 512)
        ),
    }
    rows = []
    for label, cfg in configs.items():
        work = convnet_workload(batch=8, **cfg)
        base = time_inference(pm, TC, workload=work).total_seconds
        for strat in (TACKER, TC_IC_FC, VITBIT):
            t = time_inference(pm, strat, workload=work).total_seconds
            rows.append((label, strat.name, base * 1e3, base / t))
    print()
    print(format_table(
        ["network", "method", "TC baseline (ms)", "speedup"],
        rows,
        title="Integer CNN inference on the simulated Jetson AGX Orin "
        "(batch 8)",
    ))
    print("\nSmall conv GEMMs are launch/memory bound — the same size "
          "threshold as the ViT batch-1 crossover (EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
