"""Quickstart: VitBit register operand packing in five minutes.

Walks the library's core path end to end:

1. pick the Fig. 3 packing policy for int8 operands,
2. pack values into 32-bit registers and compute with SWAR arithmetic,
3. run an exact packed GEMM (one INT multiply -> two output columns),
4. preprocess an input matrix with Algorithm 1 and run the fused
   Tensor + INT + FP GEMM of Algorithm 2, verifying bit-exactness.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.kernels import fused_gemm
from repro.packing import (
    Packer,
    packed_gemm,
    packed_scalar_mul,
    policy_for_bitwidth,
    reference_gemm,
)
from repro.preprocess import duplicate_weights, preprocess_input
from repro.utils.rng import make_rng


def main() -> None:
    rng = make_rng(0)

    # -- 1. The packing policy (Fig. 3) ------------------------------------
    policy = policy_for_bitwidth(8)
    print(f"int8 policy: {policy.lanes} values per 32-bit register, "
          f"{policy.field_bits}-bit fields, "
          f"bit utilization {policy.bit_utilization():.0%}")

    # -- 2. Pack and compute with SWAR --------------------------------------
    packer = Packer(policy)
    values = np.array([3, 7, 250, 11])
    registers = packer.pack(values)
    print(f"pack{values.tolist()} -> registers "
          f"{[hex(int(r)) for r in registers]}")
    product = packed_scalar_mul(5, registers, policy)
    print(f"one multiply by 5 -> lanes {packer.unpack(product, 4).tolist()} "
          "(all four products from two instructions)")

    # -- 3. Exact packed GEMM ----------------------------------------------
    a = rng.integers(-127, 128, size=(64, 96))   # int8 weights
    b = rng.integers(-128, 128, size=(96, 50))   # int8 activations
    c_packed = packed_gemm(a, b, policy, b_zero_point=128)
    exact = bool(np.array_equal(c_packed, reference_gemm(a, b)))
    print(f"packed GEMM (sign-split + zero-point): bit-exact = {exact}")

    # -- 4. Algorithm 1 + Algorithm 2: the fused kernel ---------------------
    stored = b + 128  # activations stored unsigned for packing
    prep = preprocess_input(stored, tensor_cuda_ratio=4.0, policy=policy)
    plan = prep.plan
    print(f"Algorithm 1 split of {plan.n_total} columns at m=4: "
          f"B1 (INT, packed) {plan.n1} | B2 (FP) {plan.n2} | "
          f"B3 (Tensor) {plan.n3}")
    a1, a2 = duplicate_weights(a)
    out = fused_gemm(a1, a2, prep.matrices, policy, b_zero_point=128)
    exact = bool(np.array_equal(out.c, reference_gemm(a, b)))
    stats = out.packed_stats
    print(f"fused Tensor+INT+FP GEMM: bit-exact = {exact}")
    print(f"packed slice: each INT instruction carries {stats.lanes} MACs "
          f"({stats.packed_multiplies:,} packed multiplies for "
          f"{stats.unpacked_multiplies:,} scalar MACs; the ratio is above "
          f"1/{stats.lanes} because exactness for *signed* weights costs a "
          "second sign-split pass — see benchmarks/bench_ablations.py)")


if __name__ == "__main__":
    main()
