"""Explore the Fig. 3 packing policy across operand bitwidths.

For each bitwidth 1..16 this prints the policy point (values per
register, field width, accumulation budget), verifies packed-GEMM
exactness, and shows the CUDA-core throughput the packing factor
unlocks — including the paper's future-work territory (sub-4-bit
operands packing beyond 4 lanes with ``cap_lanes=None``).

Run:  python examples/packing_policy_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import jetson_orin_agx
from repro.arch.throughput import cuda_core_peak_ops, packed_cuda_core_peak_ops
from repro.packing import (
    packed_gemm_unsigned,
    policy_for_bitwidth,
    reference_gemm,
    safe_accumulation_depth,
)
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    machine = jetson_orin_agx()
    rng = make_rng(5)
    base_tops = cuda_core_peak_ops(machine, "int32") / 1e12

    rows = []
    for bits in range(1, 17):
        pol = policy_for_bitwidth(bits)
        depth = safe_accumulation_depth(pol, max(1, bits - 1), bits)
        # verify exactness at this point (small random GEMM)
        hi = pol.max_value + 1
        a = rng.integers(0, hi, size=(6, 32))
        b = rng.integers(0, hi, size=(32, 9))
        exact = np.array_equal(
            packed_gemm_unsigned(a, b, pol), reference_gemm(a, b)
        )
        tops = packed_cuda_core_peak_ops(machine, pol.lanes) / 1e12
        rows.append(
            (bits, pol.lanes, pol.field_bits, depth,
             f"{pol.bit_utilization():.0%}", tops, "yes" if exact else "NO")
        )
    print(format_table(
        ["bits", "lanes", "field", "safe depth", "bit util",
         "CUDA peak (TOPS)", "exact"],
        rows,
        title=f"Fig. 3 packing policy on {machine.name} "
        f"(unpacked INT32 baseline: {base_tops:.1f} TOPS)",
        ndigits=1,
    ))

    # Future work (Sec. 4.1): beyond the paper's 4-lane cap.
    print("\nuncapped sub-4-bit packing (the paper's future-work territory):")
    for bits in (1, 2, 3):
        pol = policy_for_bitwidth(bits, cap_lanes=None)
        hi = pol.max_value + 1
        a = rng.integers(0, hi, size=(4, 40))
        b = rng.integers(0, hi, size=(40, 17))
        exact = np.array_equal(
            packed_gemm_unsigned(a, b, pol), reference_gemm(a, b)
        )
        tops = packed_cuda_core_peak_ops(machine, pol.lanes) / 1e12
        print(f"  {bits}-bit -> {pol.lanes} lanes, {tops:5.1f} TOPS, "
              f"exact={exact}")


if __name__ == "__main__":
    main()
