"""Export a Chrome-tracing timeline of the fused VitBit kernel.

Runs one SM sub-partition's warps — Tensor, packed-INT and FP roles
sharing a scheduler — through the issue-loop simulator with full event
recording, and writes ``vitbit_trace.json``.  Open it at
``chrome://tracing`` (or https://ui.perfetto.dev) to *see* the paper's
mechanism: the Tensor pipe's long MMA occupancy overlapping the
alternating INT/FP issue stream.

Run:  python examples/trace_visualizer.py [--out vitbit_trace.json]
"""

from __future__ import annotations

import argparse
import pathlib

from repro.arch import jetson_orin_agx
from repro.fusion import VITBIT
from repro.packing import policy_for_bitwidth
from repro.perfmodel import CostParams, GemmShape
from repro.perfmodel.warpsets import gemm_launch
from repro.sim.instruction import OpClass, default_timings
from repro.sim.traceexport import record_partition_trace, to_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="vitbit_trace.json")
    parser.add_argument(
        "--by", choices=("pipe", "warp"), default="pipe",
        help="timeline rows: one per execution pipe or one per warp",
    )
    args = parser.parse_args()

    machine = jetson_orin_agx()
    policy = policy_for_bitwidth(8)
    launch = gemm_launch(
        GemmShape(768, 1576, 768, name="proj"),
        VITBIT,
        machine,
        policy,
        CostParams(),
        tensor_cuda_ratio=4.0,
    )
    # One sub-partition's share: every 4th warp, with a few iterations.
    partition_warps = [
        w.scaled(6.0 / max(1, w.iterations))
        for w in launch.warps[:: machine.sm.partitions]
    ]
    timings = default_timings(machine.sm)
    events, cycles = record_partition_trace(timings, partition_warps)
    trace = to_chrome_trace(events, clock_ghz=machine.clock_ghz, by=args.by)
    out = pathlib.Path(args.out)
    out.write_text(trace)

    per_pipe: dict[str, int] = {}
    for ev in events:
        per_pipe[ev.op.name] = per_pipe.get(ev.op.name, 0) + ev.duration
    print(f"recorded {len(events)} issue events over {cycles} cycles")
    for pipe in (OpClass.TENSOR, OpClass.INT, OpClass.FP, OpClass.LSU):
        busy = per_pipe.get(pipe.name, 0)
        print(f"  {pipe.name:6s} busy {busy:5d} cycles ({busy / cycles:5.1%})")
    print(f"wrote {out} — open at chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
