"""Integer-only ViT inference under every Table 3 strategy.

Two parts:

* **functional** — builds a small integer ViT, runs the same images
  through the plain integer reference and through VitBit's fused/packed
  execution, and shows the logits are bit-identical (the paper's
  "no accuracy loss" claim in its strongest form);
* **performance** — prices a full ViT-Base inference on the simulated
  Jetson AGX Orin under TC / Tacker / TC+IC+FC / VitBit and prints the
  Fig. 5 speedup series with a per-kernel-family breakdown.

Run:  python examples/vit_inference.py [--full-functional]

``--full-functional`` runs the functional check on the real ViT-Base
size (a few minutes of NumPy); the default uses a reduced depth that
exercises identical code paths.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.arch import jetson_orin_agx
from repro.fusion import TACKER, TC, TC_IC_FC, VITBIT
from repro.perfmodel import PerformanceModel
from repro.utils.rng import make_rng
from repro.utils.tables import format_table
from repro.vit import GemmExecutor, IntViT, ViTConfig, time_inference


def functional_check(full: bool) -> None:
    cfg = ViTConfig.vit_base() if full else ViTConfig(depth=2)
    print(f"building integer-only ViT (depth {cfg.depth}, hidden {cfg.hidden}, "
          f"{cfg.tokens} tokens)...")
    model = IntViT.create(cfg, seed=7)
    rng = make_rng(123)
    images = rng.integers(0, 256, size=(1, 3, cfg.image_size, cfg.image_size))

    t0 = time.perf_counter()
    ref = model.forward(images, GemmExecutor(None))
    t1 = time.perf_counter()
    ex = GemmExecutor(VITBIT)
    got = model.forward(images, ex)
    t2 = time.perf_counter()

    exact = bool(np.array_equal(ref, got))
    print(f"reference logits top-3 classes : {np.argsort(ref[:, 0])[-3:][::-1]}")
    print(f"VitBit    logits top-3 classes : {np.argsort(got[:, 0])[-3:][::-1]}")
    print(f"bit-exact: {exact}   "
          f"(reference {t1 - t0:.1f}s, VitBit-path {t2 - t1:.1f}s NumPy time)")
    print(f"GEMMs executed through the fused path: {ex.gemm_count}; "
          f"packed INT-pipe multiplies: {ex.packed_stats.packed_multiplies:,}")
    if not exact:
        raise SystemExit("FUSED EXECUTION DIVERGED — this is a bug")


def performance_study() -> None:
    machine = jetson_orin_agx()
    pm = PerformanceModel(machine)
    print(f"\npricing ViT-Base inference on simulated {machine.name} ...")
    rows = []
    base = None
    for strategy in (TC, TACKER, TC_IC_FC, VITBIT):
        t = time_inference(pm, strategy)
        if base is None:
            base = t.total_seconds
        rows.append(
            (
                strategy.name,
                t.total_seconds * 1e3,
                t.gemm_seconds * 1e3,
                t.elementwise_seconds * 1e3,
                base / t.total_seconds,
            )
        )
    print(
        format_table(
            ["method", "total (ms)", "GEMM (ms)", "CUDA kernels (ms)", "speedup"],
            rows,
            title="Fig. 5 — simulated ViT-Base inference "
            "(paper: Tacker 1.06x, TC+IC+FC 1.11x, VitBit 1.22x)",
            ndigits=2,
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full-functional",
        action="store_true",
        help="run the functional bit-exactness check at full ViT-Base depth",
    )
    args = parser.parse_args()
    functional_check(args.full_functional)
    performance_study()


if __name__ == "__main__":
    main()
