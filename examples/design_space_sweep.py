"""Parallel design-space sweep: VitBit across future machine designs.

Sweeps a 2-D grid of architectural variants — Tensor-core throughput x
DRAM bandwidth — evaluating the end-to-end VitBit speedup at every
point with a process pool (one simulated machine per worker).  The
resulting map shows the paper's niche crisply: operand packing pays on
machines whose Tensor cores are modest relative to their CUDA arrays
(embedded parts), and fades as MMA throughput scales up.

Run:  python examples/design_space_sweep.py [--processes N]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.arch import jetson_orin_agx
from repro.fusion import TC, VITBIT
from repro.perfmodel import PerformanceModel
from repro.utils.parallel import default_processes, sweep
from repro.vit import time_inference

TC_SCALES = (0.5, 1.0, 2.0, 4.0)
BW_SCALES = (0.5, 1.0, 2.0)


def evaluate(point: tuple[float, float]) -> tuple[float, float, float]:
    """(tc_scale, bw_scale) -> (tc_scale, bw_scale, vitbit_speedup)."""
    tc_scale, bw_scale = point
    base = jetson_orin_agx()
    machine = replace(
        base,
        dram_bandwidth_gbps=base.dram_bandwidth_gbps * bw_scale,
        sm=replace(
            base.sm,
            tensor_core=replace(
                base.sm.tensor_core,
                fp16_macs_per_cycle=round(
                    base.sm.tensor_core.fp16_macs_per_cycle * tc_scale
                ),
            ),
        ),
    )
    pm = PerformanceModel(machine)
    t_tc = time_inference(pm, TC).total_seconds
    t_vb = time_inference(pm, VITBIT).total_seconds
    return tc_scale, bw_scale, t_tc / t_vb


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--processes", type=int, default=default_processes(limit=8)
    )
    args = parser.parse_args()

    points = [(t, b) for t in TC_SCALES for b in BW_SCALES]
    print(f"sweeping {len(points)} machine variants on "
          f"{args.processes} processes ...")
    results = sweep(evaluate, points, processes=args.processes)

    grid = {(t, b): s for t, b, s in results}
    header = "TC throughput x | " + " | ".join(f"BW x{b:<4g}" for b in BW_SCALES)
    print()
    print(header)
    print("-" * len(header))
    for t in TC_SCALES:
        cells = " | ".join(f"{grid[(t, b)]:7.3f}" for b in BW_SCALES)
        print(f"{t:15g} | {cells}")
    print()
    print("VitBit end-to-end speedup vs the Tensor-core baseline; the")
    print("paper's Jetson is the (1, 1) cell. Values < 1 mean the fused")
    print("kernels lose — packing is an embedded-GPU technique.")


if __name__ == "__main__":
    main()
