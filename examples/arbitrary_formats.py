"""The full "arbitrary numeric formats" story, end to end.

The paper's motivation (Sec. 1-2): AI uses formats GPUs don't support —
FP6/FP4, microscaling, odd-width integers.  This example walks the
complete software path this library provides for them:

1. **quantize** float weights into an emerging format (FP6, MX-FP4,
   INT5, ...),
2. **store densely** as a bitstream (no padding: 0.75 B/value for FP6),
3. **compute** low-bitwidth integer GEMMs with SWAR packing — including
   mixed widths like 4-bit weights x 8-bit activations (W4A8),
4. **compare** the throughput each packing factor unlocks on the
   simulated Jetson AGX Orin.

Run:  python examples/arbitrary_formats.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import jetson_orin_agx
from repro.arch.throughput import packed_cuda_core_peak_ops
from repro.formats.lowfp import FP4_E2M1, FP6_E2M3, FP8_E4M3, MXBlock
from repro.packing import (
    pack_bitstream,
    packed_gemm,
    policy_for_operands,
    reference_gemm,
    unpack_bitstream,
)
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def emerging_float_formats(rng: np.random.Generator) -> None:
    print("1. Emerging float formats (quantization error on N(0,1) data)")
    x = rng.normal(size=8192)
    rows = []
    for fmt in (FP8_E4M3, FP6_E2M3, FP4_E2M1):
        err = float(np.abs(fmt.quantize(x) - np.clip(x, -fmt.max_value, fmt.max_value)).mean())
        rows.append((fmt.name, fmt.bits, fmt.max_value, err))
    mx = MXBlock(FP4_E2M1, 32)
    s, c = mx.quantize(x)
    err = float(np.abs(mx.dequantize(s, c) - x).mean())
    rows.append(("mx-fp4 (block 32)", mx.bits_per_value, "per-block", err))
    print(format_table(
        ["format", "bits/value", "max value", "mean abs err"], rows, ndigits=4
    ))


def dense_storage(rng: np.random.Generator) -> None:
    print("\n2. Dense sub-byte storage (FP6 weights)")
    w = rng.normal(size=16384)
    codes = FP6_E2M3.encode(w).astype(np.int64)
    stream = pack_bitstream(codes, 6)
    print(f"   {w.size} weights -> {stream.size * 4} bytes "
          f"({stream.size * 4 / w.size:.3f} B/value vs 4.0 for fp32)")
    back = unpack_bitstream(stream, w.size, 6)
    assert np.array_equal(back, codes)
    print("   bitstream round-trip: exact")


def mixed_width_gemm(rng: np.random.Generator) -> None:
    print("\n3. Mixed-width packed GEMMs (exactness on the SWAR path)")
    rows = []
    for a_bits, b_bits in ((8, 8), (4, 8), (4, 4), (2, 8), (8, 2)):
        pol = policy_for_operands(a_bits, b_bits)
        a = rng.integers(-(1 << (a_bits - 1)) + 1, 1 << (a_bits - 1), size=(16, 128))
        b = rng.integers(-(1 << (b_bits - 1)), 1 << (b_bits - 1), size=(128, 24))
        c = packed_gemm(a, b, pol, b_zero_point=1 << (b_bits - 1))
        exact = bool(np.array_equal(c, reference_gemm(a, b)))
        rows.append((f"W{a_bits}A{b_bits}", pol.lanes, pol.field_bits, exact))
    print(format_table(
        ["config", "lanes/register", "field bits", "bit-exact"], rows
    ))


def unlocked_throughput() -> None:
    print("\n4. CUDA-core throughput unlocked by packing (Jetson AGX Orin)")
    machine = jetson_orin_agx()
    rows = []
    for config, lanes in (("zero-masked (any width)", 1), ("int8 x2", 2),
                          ("int5 x3", 3), ("int4 x4", 4), ("int2 x8", 8)):
        tops = packed_cuda_core_peak_ops(machine, lanes) / 1e12
        rows.append((config, lanes, tops))
    print(format_table(["configuration", "lanes", "peak TOPS"], rows, ndigits=1))


def main() -> None:
    rng = make_rng(2024)
    emerging_float_formats(rng)
    dense_storage(rng)
    mixed_width_gemm(rng)
    unlocked_throughput()


if __name__ == "__main__":
    main()
