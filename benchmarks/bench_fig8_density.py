"""Fig. 8: arithmetic density during ViT-Base inference.

Paper (normalized to TC): Tacker 1.11x, TC+IC+FC 1.17x, VitBit 1.28x.
Arithmetic density is achieved useful ops/s/mm^2 during the compute
(GEMM) kernels; the die is constant, so the normalized density is the
useful-throughput ratio on the Linear workload — which is why the
paper's Fig. 8 numbers track its Fig. 6 GEMM speedups.
"""

from __future__ import annotations

import pytest

from repro.arch import normalized_density
from repro.fusion import TACKER, TC, TC_IC_FC, VITBIT
from repro.utils.tables import format_table
from repro.vit import time_inference, vit_workload

PAPER = {"TC": 1.0, "Tacker": 1.11, "TC+IC+FC": 1.17, "VitBit": 1.28}


def _densities(pm, machine):
    work = vit_workload()
    useful_ops = sum(
        kw.gemm.flops * kw.repeat for kw in work if kw.kind == "gemm" and kw.fusable
    )
    gemm_work = [kw for kw in work if kw.kind == "gemm"]
    base = time_inference(pm, TC, workload=gemm_work).total_seconds
    out = {"TC": 1.0}
    for s in (TACKER, TC_IC_FC, VITBIT):
        secs = time_inference(pm, s, workload=gemm_work).total_seconds
        out[s.name] = normalized_density(machine, useful_ops, secs, base)
    return out


def test_fig8_arithmetic_density(pm, machine, report, benchmark):
    densities = benchmark(_densities, pm, machine)
    table = format_table(
        ["method", "normalized density", "paper"],
        [(k, v, PAPER[k]) for k, v in densities.items()],
        title="Fig. 8 — arithmetic density during ViT-Base inference "
        "(normalized to TC)",
    )
    report("fig8_density", table)

    assert 1.0 < densities["Tacker"] < densities["TC+IC+FC"] < densities["VitBit"]
    assert densities["VitBit"] == pytest.approx(1.28, abs=0.08)
    assert densities["Tacker"] == pytest.approx(1.11, abs=0.06)
    assert densities["TC+IC+FC"] == pytest.approx(1.17, abs=0.06)
