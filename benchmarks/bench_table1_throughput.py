"""Table 1: peak throughput of the Jetson AGX Orin per numeric format.

Regenerates every row of the paper's Table 1 from the machine
description, plus the Sec. 2.1 thought experiment (hypothetical native
INT8 CUDA cores -> ~32 TOPS ~ 25% of the Tensor cores' INT8 peak) and
the throughput VitBit packing actually unlocks.
"""

from __future__ import annotations

import pytest

from repro.arch import (
    cuda_core_peak_ops,
    peak_throughput_table,
    tensor_core_peak_ops,
)
from repro.arch.throughput import packed_cuda_core_peak_ops
from repro.utils.tables import format_table

PAPER_TOPS = {
    ("FP32", "CUDA Core"): 4.0,
    ("FP16", "CUDA Core"): 8.0,
    ("TF32", "Tensor Core"): 32.0,
    ("FP16", "Tensor Core"): 65.0,
    ("BFloat16", "Tensor Core"): 65.0,
    ("INT32", "CUDA Core"): 4.0,
    ("INT8", "Tensor Core"): 131.0,
    ("INT4", "Tensor Core"): 262.0,
}


def test_table1_rows(machine, report, benchmark):
    rows = benchmark(peak_throughput_table, machine)
    table = format_table(
        ["Numeric Format", "Unit", "Model TOPS", "Paper TOPS"],
        [
            (r.fmt, r.unit, r.teraops, PAPER_TOPS[(r.fmt, r.unit)])
            for r in rows
        ],
        title="Table 1 — peak throughput, NVIDIA Jetson AGX Orin",
        ndigits=1,
    )
    report("table1_throughput", table)
    for r in rows:
        assert r.teraops == pytest.approx(PAPER_TOPS[(r.fmt, r.unit)], rel=0.02)


def test_sec21_packing_unlocks_throughput(machine, report, benchmark):
    """The motivating arithmetic of Sec. 2.1."""
    int32 = benchmark(cuda_core_peak_ops, machine, "int32")
    packed2 = packed_cuda_core_peak_ops(machine, 2)
    native8 = packed_cuda_core_peak_ops(machine, 8)
    tc_int8 = tensor_core_peak_ops(machine, "int8")
    table = format_table(
        ["Configuration", "TOPS", "vs TC INT8"],
        [
            ("INT32 CUDA (zero-masked INT8)", int32 / 1e12, int32 / tc_int8),
            ("VitBit packed x2 (INT8)", packed2 / 1e12, packed2 / tc_int8),
            ("Hypothetical native INT8", native8 / 1e12, native8 / tc_int8),
            ("Tensor core INT8", tc_int8 / 1e12, 1.0),
        ],
        title="Sec. 2.1 — CUDA-core INT8 throughput scenarios",
    )
    report("sec21_throughput_scenarios", table)
    assert packed2 == pytest.approx(2 * int32)
    assert native8 / tc_int8 == pytest.approx(0.25, rel=0.05)
