"""Sec. 3.2's overhead analysis, made quantitative.

The paper asserts three overheads are negligible:

1. weight duplication (A -> A1 int + A2 fp) happens once at model
   load;
2. input conversion/packing is "less than 1% of the inference time";
3. kernel reconstruction happens once before the first inference.

This bench estimates (1) and (2) against the simulated inference time
and also measures the *actual* NumPy preprocessing wall time of the
functional pipeline as a cross-check of the model's ordering.
"""

from __future__ import annotations

import time


from repro.fusion import VITBIT
from repro.preprocess import (
    duplicate_weights,
    estimate_preprocess_seconds,
    preprocess_input,
)
from repro.utils.rng import make_rng
from repro.utils.tables import format_table
from repro.vit import time_inference, vit_workload
from repro.vit.config import ViTConfig
from repro.vit.workload import DEFAULT_BATCH


def test_overhead_analysis(pm, policy, report, benchmark):
    cfg = ViTConfig.vit_base()
    inference = time_inference(pm, VITBIT).total_seconds

    # (2) input conversion: the network input in its patch-matrix
    # orientation, (patch_dim, patches * batch).
    rng = make_rng(0)
    b = rng.integers(0, 256, size=(cfg.patch_dim, cfg.patches * DEFAULT_BATCH))
    result = benchmark(preprocess_input, b, 4.0, policy)
    est = estimate_preprocess_seconds(result)

    # cross-check with actual NumPy wall time (ordering only)
    t0 = time.perf_counter()
    preprocess_input(b, 4.0, policy)
    wall = time.perf_counter() - t0

    # (1) weight duplication, once per model load.
    w = rng.integers(-127, 128, size=(cfg.hidden, cfg.hidden))
    t0 = time.perf_counter()
    duplicate_weights(w)
    dup_wall = (time.perf_counter() - t0) * (4 * cfg.depth)  # all linears ~

    rows = [
        ("simulated VitBit inference", inference * 1e3, "-"),
        ("input preprocessing (model est.)", est * 1e3,
         f"{100 * est / inference:.2f}%"),
        ("input preprocessing (NumPy wall)", wall * 1e3, "-"),
        ("weight duplication (one-time, NumPy wall)", dup_wall * 1e3,
         "amortized over all inferences"),
    ]
    table = format_table(
        ["item", "time (ms)", "vs inference"],
        rows,
        title="Sec. 3.2 overhead analysis — paper claims < 1% input "
        "conversion overhead",
    )
    report("overhead_analysis", table)

    # The paper's claim holds on the model estimate.
    assert est / inference < 0.02
    # Inputs are far smaller than weights (the paper's other claim):
    # one input batch vs one layer's weights alone.
    weights_elems = cfg.hidden * cfg.hidden
    input_elems = cfg.patch_dim * cfg.patches * DEFAULT_BATCH
    total_weight_elems = weights_elems * 4 * cfg.depth
    assert input_elems < 0.2 * total_weight_elems


def test_why_intermediates_stay_packed(pm, policy, report, benchmark):
    """The design point behind Sec. 3.2's 'intermediate results from one
    layer are directly used as packed inputs for the next layer': if
    every Linear's input were re-split/re-packed on the CPU each layer,
    the conversion cost would be a large fraction of the inference —
    keeping activations in the packed layout between kernels is what
    makes the <1% overhead claim possible."""
    rng = make_rng(1)

    def run():
        total = 0.0
        for kw in vit_workload():
            if kw.kind != "gemm" or not kw.fusable:
                continue
            b = rng.integers(0, 256, size=(min(kw.gemm.k, 256), kw.gemm.n))
            res = preprocess_input(b, 4.0, policy)
            scale = kw.gemm.k / b.shape[0]
            total += estimate_preprocess_seconds(res) * scale * kw.repeat
        return total

    total_est = benchmark(run)
    inference = time_inference(pm, VITBIT).total_seconds
    frac = total_est / inference
    report(
        "overhead_repack_every_layer",
        f"re-packing every Linear input on the CPU would cost "
        f"{total_est * 1e3:.1f} ms = {100 * frac:.0f}% of the "
        f"{inference * 1e3:.1f} ms inference — hence the paper's "
        "packed-intermediate design.",
    )
    assert frac > 0.25  # the naive design would be ruinous...
    # ...while the actual once-per-inference input conversion is < 1%
    # (asserted in test_overhead_analysis).
