"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper:
it computes the same rows/series the paper reports, prints them, writes
them to ``benchmarks/out/<name>.txt``, and asserts the *shape* of the
result (ordering, rough factors) — not absolute numbers, since the
substrate is a simulator rather than the authors' Jetson.

Beyond the per-bench text reports, the session writes a machine-readable
``benchmarks/out/summary.json`` with per-bench wall times, the key
factors each bench chose to record (``report(name, text, **factors)``),
and the timing-cache hit rate — the trajectory file future PRs diff to
catch performance regressions.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline, or read the files under ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import obs
from repro.arch import jetson_orin_agx
from repro.packing import policy_for_bitwidth
from repro.perfmodel import PerformanceModel, TimingCache

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Accumulated across the session, dumped to summary.json at the end.
_SUMMARY: dict = {"benches": {}, "factors": {}}


@pytest.fixture(scope="session")
def machine():
    """The paper's evaluation platform (Table 2)."""
    return jetson_orin_agx()


@pytest.fixture(scope="session")
def policy():
    """The INT8 packing policy the paper evaluates (2 lanes)."""
    return policy_for_bitwidth(8)


@pytest.fixture(scope="session")
def pm(machine):
    """Session-wide performance model (kernel timings are memoized)."""
    return PerformanceModel(machine)


@pytest.fixture(scope="session")
def report():
    """Callable writing a named report to stdout and benchmarks/out/.

    Keyword arguments are recorded as that bench's *key factors* in
    ``summary.json`` (JSON-serializable scalars/dicts only).
    """
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str, **factors) -> None:
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        if factors:
            _SUMMARY["factors"][name] = factors

    return _write


def pytest_runtest_logreport(report):
    """Record each bench's call-phase wall time for summary.json."""
    if report.when == "call" and report.passed:
        _SUMMARY["benches"][report.nodeid] = round(report.duration, 4)


def pytest_sessionfinish(session, exitstatus):
    """Merge benchmarks/out/summary.json (the perf-trajectory record).

    Only the bench-owned sections are replaced — a ``"serve"`` section
    written by a concurrent ``repro serve`` survives — and the write is
    atomic (temp file + rename via :func:`repro.obs.merge_summary`).
    """
    if not _SUMMARY["benches"]:
        return
    stats = TimingCache.default().stats()
    obs.merge_summary(
        OUT_DIR / "summary.json",
        {
            "benches": _SUMMARY["benches"],
            "factors": _SUMMARY["factors"],
            "total_bench_seconds": round(sum(_SUMMARY["benches"].values()), 4),
            "timing_cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "entries": stats.entries,
                "hit_rate": round(stats.hit_rate, 4),
                "persistent": stats.persistent,
            },
            "metrics": obs.snapshot(),
        },
    )
