"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper:
it computes the same rows/series the paper reports, prints them, writes
them to ``benchmarks/out/<name>.txt``, and asserts the *shape* of the
result (ordering, rough factors) — not absolute numbers, since the
substrate is a simulator rather than the authors' Jetson.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline, or read the files under ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.arch import jetson_orin_agx
from repro.packing import policy_for_bitwidth
from repro.perfmodel import PerformanceModel

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def machine():
    """The paper's evaluation platform (Table 2)."""
    return jetson_orin_agx()


@pytest.fixture(scope="session")
def policy():
    """The INT8 packing policy the paper evaluates (2 lanes)."""
    return policy_for_bitwidth(8)


@pytest.fixture(scope="session")
def pm(machine):
    """Session-wide performance model (kernel timings are memoized)."""
    return PerformanceModel(machine)


@pytest.fixture(scope="session")
def report():
    """Callable writing a named report to stdout and benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _write
