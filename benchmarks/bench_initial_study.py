"""Sec. 3.2's initial study: GEMM time per core class, and the ratio m.

The paper measures one GEMM five ways and derives the 4:1 Tensor:CUDA
assignment:

=========  ==================  ============
case       description         paper (x TC)
=========  ==================  ============
TC         Tensor cores only   1.0
IC         INT cores only      ~7.5
FC         FP cores only       ~7.5
IC+FC      both CUDA pipes     ~6.5
IC+FC+P    both + packing      ~4
=========  ==================  ============

The m rule then yields 4 — exactly the paper's chosen split.
"""

from __future__ import annotations

import pytest

from repro.fusion import FC, IC, IC_FC, TC
from repro.fusion.strategies import Strategy
from repro.perfmodel import GemmShape
from repro.utils.tables import format_table
from repro.vit.workload import DEFAULT_BATCH

SHAPE = GemmShape(768, 197 * DEFAULT_BATCH, 768, name="proj")
IC_FC_P = Strategy(
    name="IC+FC+P",
    uses_tensor=False,
    uses_int=True,
    uses_fp=True,
    packing=True,
    kernel_scope="C",
    description="both CUDA pipes with packing (Sec. 3.2 case 5)",
)
PAPER = {"TC": 1.0, "IC": 7.5, "FC": 7.5, "IC+FC": 6.5, "IC+FC+P": 4.0}


def _study(pm):
    t_tc = pm.time_gemm(SHAPE, TC).seconds
    out = {"TC": 1.0}
    for s in (IC, FC, IC_FC, IC_FC_P):
        out[s.name] = pm.time_gemm(SHAPE, s).seconds / t_tc
    return out


def test_initial_study_ratios(pm, report, benchmark):
    ratios = benchmark(_study, pm)
    table = format_table(
        ["case", "model (x TC)", "paper (x TC)"],
        [(k, v, PAPER[k]) for k, v in ratios.items()],
        title=f"Sec. 3.2 initial study — GEMM {SHAPE.label()}",
        ndigits=2,
    )
    report("initial_study", table)
    # Shape assertions: ordering and rough factors.
    assert ratios["IC"] == pytest.approx(7.5, rel=0.2)
    assert ratios["FC"] == pytest.approx(ratios["IC"], rel=0.05)
    assert ratios["IC"] > ratios["IC+FC"] > ratios["IC+FC+P"] > 1.0
    assert ratios["IC+FC+P"] == pytest.approx(4.0, rel=0.2)


def test_m_rule_selects_four(pm, report, benchmark):
    m = benchmark(pm.determine_tensor_cuda_ratio, SHAPE, IC_FC_P)
    report(
        "initial_study_m",
        f"Tensor:CUDA assignment ratio m = {m} (paper: 4)",
    )
    assert m == 4
