"""SLO attainment and recovery time of the cluster under chaos.

The serving PRs priced the happy path; this bench prices the *unhappy*
ones.  Each scenario replays a seeded fault schedule (worker kill,
grey hang, latency spike, refuted-packing storm, queue poison) against
the 3-replica cluster and reports per-QoS SLO attainment, failure
detection/recovery times, and the bit-exactness canary — which must
read **zero** in every scenario: chaos is allowed to cost latency,
never correctness.

The headline assertion mirrors the robustness acceptance bar: with a
replica killed mid-run, every QoS class still attains >= 99% of its
admitted requests, recovery completes in bounded simulated time, and
two runs of the same seeds agree byte-for-byte.
"""

from __future__ import annotations

import json

from repro.chaos import ChaosSpec
from repro.serve import ClusterConfig, LoadSpec, run_cluster_load
from repro.serve.request import RequestStatus
from repro.utils.tables import format_table

_SPEC = LoadSpec(requests=150, rate_per_s=400.0, seed=0, model="vit-base")
_CONFIG = ClusterConfig(replicas=3, seed=0)

#: Named fault mixes (cache chaos is exercised in tests/test_chaos.py
#: against a scratch cache directory, not the shared bench cache).
_SCENARIOS = {
    "baseline": None,
    "worker-kill": ChaosSpec(seed=42, crashes=2),
    "grey-failure": ChaosSpec(seed=43, crashes=0, hangs=2),
    "latency-spike": ChaosSpec(seed=44, crashes=0, latency_spikes=2),
    "refute-storm": ChaosSpec(seed=45, crashes=0, refute_storms=1,
                              poison_requests=2),
    "full-chaos": ChaosSpec(seed=46, crashes=1, hangs=1, latency_spikes=1,
                            refute_storms=1, poison_requests=2),
}


def _run_scenario(machine, chaos):
    return run_cluster_load(machine, _CONFIG, _SPEC, chaos=chaos)


def _slo_floor(report) -> float:
    """Worst per-QoS SLO attainment of one run (1.0 when nothing admitted)."""
    per_qos = [v["attainment"] for k, v in report.slo.items() if k != "overall"]
    return min(per_qos) if per_qos else 1.0


def test_worker_kill_slo(machine, report, benchmark):
    """Headline drill: kill replicas mid-run, hold >= 99% SLO per QoS."""
    rep = benchmark.pedantic(
        lambda: _run_scenario(machine, _SCENARIOS["worker-kill"]),
        rounds=1, iterations=1,
    )
    rerun = _run_scenario(machine, _SCENARIOS["worker-kill"])

    recov = rep.recovery_seconds
    lines = [
        rep.render(),
        "",
        f"determinism: rerun identical = "
        f"{rep.deterministic_summary() == rerun.deterministic_summary()}",
    ]
    report(
        "chaos_worker_kill",
        "\n".join(lines),
        slo={k: v["attainment"] for k, v in rep.slo.items()},
        failures_detected=rep.stats["failures_detected"],
        restarts=rep.stats["restarts"],
        mean_recovery_ms=round(
            sum(recov) / len(recov) * 1e3, 3) if recov else 0.0,
        bit_inexact=rep.bit_inexact,
        verified_batches=rep.verified_batches,
    )

    # The acceptance bar: >= 99% per-QoS SLO attainment with replicas
    # dying, zero non-bit-exact responses, deterministic reruns.
    assert _slo_floor(rep) >= 0.99
    assert rep.bit_inexact == 0 and rep.verified_batches > 0
    assert rep.stats["failures_detected"] >= 1
    assert rep.stats["restarts"] >= 1
    assert all(r < 0.1 for r in recov), "recovery exceeded 100 simulated ms"
    assert json.dumps(rep.deterministic_summary(), sort_keys=True) == \
        json.dumps(rerun.deterministic_summary(), sort_keys=True)


def test_chaos_scenario_sweep(machine, report, benchmark):
    """Every fault mix: SLO table + the zero-bit-inexact invariant."""
    results = benchmark.pedantic(
        lambda: {
            name: _run_scenario(machine, chaos)
            for name, chaos in _SCENARIOS.items()
        },
        rounds=1, iterations=1,
    )

    rows = []
    for name, rep in results.items():
        recov = rep.recovery_seconds
        rows.append(
            (
                name,
                f"{rep.slo['overall']['attainment']:.2%}",
                f"{_slo_floor(rep):.2%}",
                rep.stats["failures_detected"],
                rep.stats["restarts"],
                round(sum(recov) / len(recov) * 1e3, 2) if recov else 0.0,
                rep.count(RequestStatus.FAILED),
                rep.bit_inexact,
            )
        )
    table = format_table(
        ["scenario", "SLO overall", "SLO floor", "failures", "restarts",
         "mean recovery (ms)", "failed", "bit-inexact"],
        rows,
        title=f"chaos scenarios — {_SPEC.requests} requests @ "
        f"{_SPEC.rate_per_s:.0f}/s, {_CONFIG.replicas} replicas",
    )
    report(
        "chaos_scenarios",
        table,
        slo_floor={n: round(_slo_floor(r), 4) for n, r in results.items()},
        bit_inexact={n: r.bit_inexact for n, r in results.items()},
    )

    base = results["baseline"]
    assert _slo_floor(base) == 1.0, "pristine cluster must attain every SLO"
    assert base.stats["failures_detected"] == 0
    for name, rep in results.items():
        # Chaos may cost latency/availability, never correctness.
        assert rep.bit_inexact == 0, f"{name} produced bit-inexact results"
        assert rep.verified_batches > 0
        assert _slo_floor(rep) >= 0.95, f"{name} fell below the SLO floor"
    # The refute storm must degrade, not fail: batches served during
    # the storm take the Tensor-only baseline instead of erroring.
    storm = results["refute-storm"]
    fallback = sum(
        r["stats"].get("fallback_batches", 0) for r in storm.replica_stats
    )
    assert fallback > 0, "storm scenario never exercised the degraded path"
