"""Fig. 9: instruction count per ViT layer, VitBit vs IC+FC.

Paper: packing reduces the total instruction count for kernel
execution by up to 1.5x compared to IC+FC.  Both methods execute the
same work on CUDA cores; packing retires ``lanes`` INT MACs per
instruction and halves packed-slice loads, which is where the
reduction comes from.  We count instructions analytically (the same
accounting the simulator executes) for each kernel of one block.
"""

from __future__ import annotations

import pytest

from repro.fusion import IC_FC
from repro.fusion.strategies import Strategy
from repro.perfmodel.warpsets import (
    elementwise_instruction_totals,
    gemm_instruction_totals,
)
from repro.perfmodel import ELEMENTWISE_KERNELS, CostParams
from repro.utils.tables import format_table
from repro.vit import vit_workload

IC_FC_P = Strategy(
    name="IC+FC+P",
    uses_tensor=False,
    uses_int=True,
    uses_fp=True,
    packing=True,
    kernel_scope="C",
    description="IC+FC with VitBit packing",
)


def _instruction_ratios(policy):
    params = CostParams()
    rows = []
    for kw in vit_workload():
        if kw.kind == "gemm":
            if not kw.fusable:
                continue
            base_plan = IC_FC.split_plan(kw.gemm.n, policy, 0.0)
            pack_plan = IC_FC_P.split_plan(kw.gemm.n, policy, 0.0)
            base = sum(
                gemm_instruction_totals(kw.gemm, base_plan, policy, params).values()
            )
            packed = sum(
                gemm_instruction_totals(kw.gemm, pack_plan, policy, params).values()
            )
        else:
            desc = ELEMENTWISE_KERNELS[kw.elementwise]
            base = sum(
                elementwise_instruction_totals(
                    desc, kw.n_elements, IC_FC, policy
                ).values()
            )
            packed = sum(
                elementwise_instruction_totals(
                    desc, kw.n_elements, IC_FC_P, policy
                ).values()
            )
        rows.append((kw.name, base, packed, base / packed))
    return rows


def test_fig9_instruction_reduction(policy, report, benchmark):
    rows = benchmark(_instruction_ratios, policy)
    total_base = sum(r[1] for r in rows)
    total_packed = sum(r[2] for r in rows)
    table = format_table(
        ["kernel", "IC+FC (Minstr)", "VitBit (Minstr)", "reduction"],
        [(n, b / 1e6, p / 1e6, r) for n, b, p, r in rows]
        + [("TOTAL", total_base / 1e6, total_packed / 1e6,
            total_base / total_packed)],
        title="Fig. 9 — instruction count per kernel (VitBit vs IC+FC; "
        "paper: up to 1.5x reduction)",
        ndigits=2,
    )
    report("fig9_instructions", table)

    reductions = [r for _, _, _, r in rows]
    # Every kernel's stream shrinks or stays equal; the best shrink is
    # in the paper's 1.4-1.6x band; nothing exceeds the lane count (2).
    assert all(r >= 0.999 for r in reductions)
    assert max(reductions) == pytest.approx(1.5, abs=0.12)
    assert max(reductions) <= 2.0
    assert total_base / total_packed > 1.2


def test_fig9_gemm_reduction_tracks_packing_factor(policy, benchmark):
    """On a pure GEMM the instruction reduction approaches
    lanes * (1 + lam) / (1 + lanes*lam) — the closed form of packing
    both MACs and loads."""
    params = CostParams()
    from repro.perfmodel import GemmShape

    shape = GemmShape(768, 1576, 768)

    def _total(strategy):
        return sum(
            gemm_instruction_totals(
                shape, strategy.split_plan(shape.n, policy, 0.0), policy, params
            ).values()
        )

    base = benchmark(_total, IC_FC)
    packed = _total(IC_FC_P)
    assert base / packed == pytest.approx(1.5, abs=0.1)

