"""Extension studies beyond the paper's figures (DESIGN.md ablation index).

* **energy** — joules per inference per strategy.  Finding: on the
  energy model, simultaneous execution *costs* energy (CUDA-core MACs
  are ~3.5x less efficient than Tensor-core MACs) even as it saves
  time; VitBit's packing claws back about half of Tacker/TC+IC+FC's
  energy regression.  The paper optimizes latency and arithmetic
  density only.
* **batch crossover** — at batch 1 the fp32 weight duplicate makes the
  fused GEMMs memory-bound and VitBit loses; the win appears once the
  weight streams amortize (batch >= ~4 on this model).
* **model scaling** — speedups across DeiT-Tiny .. ViT-Large; wider
  GEMMs amortize launch/memory overheads, so bigger models gain more.
* **register packing (prior work)** — Wang & Zhang's storage-side
  packing raises occupancy but not peak throughput; VitBit raises
  throughput: the Sec. 2.2 distinction, made quantitative.
"""

from __future__ import annotations


from repro.arch.energy import inference_energy
from repro.arch.specs import SMSpec
from repro.fusion import TACKER, TC, TC_IC_FC, VITBIT
from repro.perfmodel import PerformanceModel
from repro.sim.occupancy import (
    KernelResources,
    occupancy_gain_from_register_packing,
)
from repro.utils.tables import format_table
from repro.vit import time_inference
from repro.vit.zoo import MODEL_ZOO


def test_extension_energy_per_inference(pm, report, benchmark):
    def run():
        return {
            s.name: inference_energy(pm, s)
            for s in (TC, TACKER, TC_IC_FC, VITBIT)
        }

    energies = benchmark(run)
    base = energies["TC"].total
    table = format_table(
        ["method", "total (mJ)", "compute", "DRAM", "static", "vs TC"],
        [
            (k, e.total * 1e3, e.dynamic_compute * 1e3,
             e.dynamic_dram * 1e3, e.static * 1e3, e.total / base)
            for k, e in energies.items()
        ],
        title="Extension — energy per ViT-Base inference (simulated)",
        ndigits=1,
    )
    report("ext_energy", table)

    # Tensor cores are the energy-efficient unit: every fused strategy
    # pays a compute-energy premium...
    for name in ("Tacker", "TC+IC+FC", "VitBit"):
        assert energies[name].dynamic_compute > energies["TC"].dynamic_compute
    # ...but packing makes VitBit cheaper than the unpacked fusion.
    assert energies["VitBit"].total < energies["TC+IC+FC"].total
    # And all strategies save static energy by finishing sooner.
    assert energies["VitBit"].static < energies["TC"].static


def test_extension_batch_crossover(machine, report, benchmark):
    def run():
        pm_local = PerformanceModel(machine)
        out = {}
        for batch in (1, 2, 4, 8, 16):
            base = time_inference(pm_local, TC, batch=batch).total_seconds
            vb = time_inference(pm_local, VITBIT, batch=batch).total_seconds
            out[batch] = base / vb
        return out

    speedups = benchmark(run)
    table = format_table(
        ["batch", "VitBit speedup vs TC"],
        list(speedups.items()),
        title="Extension — batch-size crossover (fp32 weight duplicate "
        "makes fused GEMMs memory-bound at tiny batches)",
    )
    report("ext_batch_crossover", table)

    assert speedups[1] < speedups[8]  # small batches benefit less
    assert speedups[8] > 1.15
    assert speedups[16] > 1.15


def test_extension_model_scaling(pm, report, benchmark):
    def run():
        out = {}
        for name in ("deit-tiny", "deit-small", "vit-base", "vit-large"):
            cfg = MODEL_ZOO[name]
            base = time_inference(pm, TC, config=cfg).total_seconds
            vb = time_inference(pm, VITBIT, config=cfg).total_seconds
            out[name] = (base * 1e3, base / vb)
        return out

    results = benchmark(run)
    table = format_table(
        ["model", "TC inference (ms)", "VitBit speedup"],
        [(k, v[0], v[1]) for k, v in results.items()],
        title="Extension — VitBit speedup across model sizes",
    )
    report("ext_model_scaling", table)

    assert results["vit-base"][1] > results["deit-tiny"][1]
    for name, (_, s) in results.items():
        assert s > 1.0, name


def test_extension_register_packing_prior_work(report, benchmark):
    """Sec. 2.2 made quantitative: storage-side register packing (Wang
    & Zhang) raises occupancy, not throughput."""
    sm = SMSpec()
    kernel = KernelResources(registers_per_thread=64, threads_per_block=256)
    base, packed = benchmark(
        occupancy_gain_from_register_packing,
        sm, kernel, narrow_fraction=0.6, narrow_bits=8,
    )
    report(
        "ext_register_packing",
        "Prior-work register packing (60% of live values are 8-bit):\n"
        f"  baseline : {base.warps_per_sm} resident warps "
        f"({base.occupancy_fraction:.0%} occupancy, limiter {base.limiter})\n"
        f"  packed   : {packed.warps_per_sm} resident warps "
        f"({packed.occupancy_fraction:.0%} occupancy, limiter {packed.limiter})\n"
        "  peak ALU throughput : unchanged (operands at the ALU are "
        "still one value per register) — the gap VitBit fills.",
    )
    assert packed.warps_per_sm > base.warps_per_sm
    assert base.limiter == "registers"
