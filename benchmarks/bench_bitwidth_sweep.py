"""Future-work sweep: VitBit at lower operand bitwidths.

Sec. 4.1: "although VitBit utilizes INT8 in this paper, VitBit is
applicable to the lower bitwidth integers, allowing for packing of up
to 4 values...  Further analysis ... will be conducted as part of
future work."  This bench conducts it on the simulated Orin: the Fig. 3
policy at 4..8-bit operands drives the packing factor (2, 3 or 4
lanes), Eq. 1 re-balances the INT:FP split, the m rule re-balances
Tensor:CUDA, and the end-to-end ViT-Base speedup grows accordingly.
"""

from __future__ import annotations

import pytest

from repro.fusion import TC, VITBIT
from repro.packing import policy_for_bitwidth
from repro.perfmodel import PerformanceModel
from repro.runner import run_sweep
from repro.utils.tables import format_table
from repro.vit import time_inference

BITS = (8, 6, 5, 4)


def _bitwidth_point(point):
    """Price VitBit at one operand bitwidth (module-level: pickled to
    sweep workers)."""
    machine, bits = point
    policy = policy_for_bitwidth(bits)
    pm = PerformanceModel(machine, policy)
    base = time_inference(pm, TC).total_seconds
    vb = time_inference(pm, VITBIT).total_seconds
    return (policy.lanes, base / vb)


def _sweep(machine):
    rep = run_sweep(
        _bitwidth_point,
        [(machine, bits) for bits in BITS],
        labels=[f"{bits}-bit" for bits in BITS],
        label="bitwidth sweep",
    )
    return dict(zip(BITS, rep.values)), rep


def test_bitwidth_sweep(machine, report, benchmark):
    results, rep = benchmark(_sweep, machine)
    table = format_table(
        ["operand bits", "packing lanes", "VitBit speedup vs TC"],
        [(bits, lanes, s) for bits, (lanes, s) in results.items()],
        title="Future work — end-to-end VitBit speedup vs operand bitwidth "
        "(Fig. 3 policy drives the packing factor)",
    )
    report(
        "bitwidth_sweep",
        table,
        speedups={bits: round(s, 4) for bits, (lanes, s) in results.items()},
        sweep_wall_seconds=round(rep.wall_seconds, 4),
        cache_hit_rate=round(rep.hit_rate, 4),
    )

    # More lanes -> more speedup; int8's 2 lanes are the paper's 1.22x
    # regime, int4's 4 lanes should clearly beat it.
    assert results[8][0] == 2 and results[4][0] == 4
    assert results[4][1] > results[8][1]
    assert results[5][1] >= results[8][1]
    assert results[8][1] == pytest.approx(1.20, abs=0.06)


def test_bitwidth_sweep_m_grows_with_lanes(machine, benchmark):
    """Deeper packing makes CUDA cores relatively faster, so the m rule
    assigns them a larger share (smaller m)."""
    from repro.perfmodel import GemmShape
    from repro.fusion.strategies import Strategy

    shape = GemmShape(768, 1576, 768)
    packed = Strategy("P", False, True, True, True, "C", "packed probe")
    def run():
        out = {}
        for bits in (8, 4):
            pm = PerformanceModel(machine, policy_for_bitwidth(bits))
            out[bits] = pm.determine_tensor_cuda_ratio(shape, packed)
        return out

    ms = benchmark(run)
    assert ms[4] < ms[8]
