"""The packing-policy search Pareto sweep, and its dominance audit.

Runs :func:`repro.packing.search.search_policies` over the standard
operand pairs at the ViT-Base depth (K = 768) and publishes the Pareto
frontier — density x proven-safe depth x predicted MAC/s — plus the
learned table into ``summary.json`` under ``policy_search``.

The CI ``policy-search-smoke`` job runs this file and fails the build
unless:

* every learned entry **matches or beats** the static Fig. 3 layout's
  predicted MAC/s (the search can only improve on the rule, never
  regress it — the rule's layout is always in the candidate set);
* re-running the overflow prover over every emitted entry yields
  **zero refutations** (no admitted plan is refutable);
* at least one asymmetric pair ships a **denser-than-Fig. 3**
  proven-safe layout, and that layout's packed GEMM is bit-exact
  against ``reference_gemm`` at the full proven depth.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.packing import packed_gemm_unsigned, reference_gemm
from repro.packing.search import (
    DEFAULT_DEPTH,
    search_policies,
)
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

M, N = 196, 196  # ViT-Base token tile (matches DEFAULT_SHAPE)
K = DEFAULT_DEPTH


def test_policy_search_pareto(report, benchmark):
    result = benchmark(lambda: search_policies(k=K, processes=1))
    table = result.table
    table.save()  # benchmarks/out/policy_table.json, the shipped artifact

    pareto = format_table(
        ["pair", "lanes", "field", "chunk", "status", "depth", "density",
         "MAC/s (1e6)"],
        result.pareto_rows(),
        title=f"policy-search Pareto sweep — K={K}, "
              f"{result.counters['candidates']} candidates",
    )
    report(
        "policy_search",
        pareto,
        k=K,
        counters=result.counters,
        chosen={
            pair: {
                "lanes": e["lanes"],
                "field_bits": e["field_bits"],
                "chunk_depth": e["chunk_depth"],
                "density": e["density"],
                "mac_per_s": e["mac_per_s"],
                "static_lanes": e["static_lanes"],
                "static_mac_per_s": e["static_mac_per_s"],
            }
            for pair, e in sorted(table.entries.items())
        },
    )
    # The CI smoke asserts on this top-level section (merge_summary
    # composes with the conftest sessionfinish writer).
    obs.merge_summary("benchmarks/out/summary.json", {"policy_search": {
        "k": K,
        "counters": result.counters,
        "entries": table.entries,
        "sweep_simulations": result.sweep_simulations,
    }})

    # Sanity: the counters add up and refuted plans carry witnesses.
    assert result.counters["candidates"] == len(result.outcomes)
    assert result.counters["proven"] + result.counters["refuted"] == (
        result.counters["candidates"]
    )
    refuted = [o for o in result.outcomes if o.status == "refuted"]
    assert refuted and all(o.witness is not None for o in refuted)

    # Dominance: the learned pick matches or beats the static layout's
    # predicted throughput for every pair the static rule can price.
    for pair, e in table.entries.items():
        if e["static_mac_per_s"] is not None:
            assert e["mac_per_s"] >= e["static_mac_per_s"], (
                f"{pair}: learned {e['mac_per_s']:.3e} MAC/s loses to "
                f"static {e['static_mac_per_s']:.3e}"
            )

    # Soundness: every emitted entry re-proves safe right now.
    failures = table.reverify()
    assert not failures, f"refutable entries shipped: {failures}"


def test_asymmetric_denser_than_fig3_and_bit_exact(report, benchmark):
    """At least one asymmetric pair must ship a layout denser than the
    symmetric Fig. 3 rule — and that layout must compute exact GEMMs."""
    result = search_policies(k=K, processes=1)
    denser = {
        pair: e
        for pair, e in result.table.entries.items()
        if e["a_bits"] != e["b_bits"] and e["lanes"] > e["static_lanes"]
    }
    assert denser, (
        "no asymmetric pair beat the symmetric lane count: "
        f"{ {p: (e['lanes'], e['static_lanes']) for p, e in result.table.entries.items()} }"
    )

    def _parity():
        outcomes = {}
        rng = make_rng(20260807)
        for pair, e in sorted(denser.items()):
            policy = result.table.policy_for(e["a_bits"], e["b_bits"])
            a = rng.integers(0, 1 << e["a_bits"], size=(8, K), dtype=np.int64)
            b = rng.integers(0, 1 << e["b_bits"], size=(K, 12), dtype=np.int64)
            got = packed_gemm_unsigned(
                a, b, policy, a_bits=e["a_bits"], method="chunked"
            )
            outcomes[pair] = bool(np.array_equal(got, reference_gemm(a, b)))
        return outcomes

    outcomes = benchmark(_parity)
    assert all(outcomes.values()), f"bit-exactness failed: {outcomes}"
    report(
        "policy_search_density",
        format_table(
            ["pair", "lanes", "Fig.3 lanes", "density", "bit-exact"],
            [
                (p, e["lanes"], e["static_lanes"], round(e["density"], 3),
                 outcomes[p])
                for p, e in sorted(denser.items())
            ],
            title="asymmetric layouts denser than the symmetric rule",
        ),
        denser_pairs={p: e["lanes"] for p, e in sorted(denser.items())},
        bit_exact=outcomes,
    )
