"""Structural (tiled) kernel model vs the aggregate cost model.

Cross-validation of the reproduction's two GEMM cost views:

* the aggregate model summarizes a CUDA GEMM with lambda = 0.45 loads
  per ALU op (the constant behind every figure);
* the tiled builder constructs the instruction stream from block/warp
  tiling, so the ratio *emerges* from shared-memory reuse.

The bench autotunes tile shapes on the simulated Orin, reports the
emergent loads/ALU of the winners, and checks the structural kernel
reproduces the aggregate model's IC GEMM time and the ~1.9x packed
speedup.
"""

from __future__ import annotations

import pytest

from repro.fusion import IC
from repro.kernels.tiling import TileConfig, autotune, build_tiled_gemm, simulate_tiled
from repro.perfmodel import GemmShape, PerformanceModel
from repro.utils.tables import format_table
from repro.vit.workload import DEFAULT_BATCH

SHAPE = GemmShape(768, 197 * DEFAULT_BATCH, 768, name="proj")


def test_tiling_autotune_table(machine, report, benchmark):
    def run():
        rows = []
        for tile in (
            TileConfig(32, 32, 8, 4, 4, 2),
            TileConfig(64, 32, 16, 4, 4, 4),
            TileConfig(64, 64, 16, 8, 4, 4),
            TileConfig(64, 64, 32, 8, 4, 4),
            TileConfig(128, 64, 16, 8, 8, 4),
            TileConfig(128, 128, 16, 16, 8, 4),
        ):
            g = build_tiled_gemm(SHAPE, tile, machine)
            s = simulate_tiled(g, machine)
            rows.append((tile.label(), g.loads_per_alu, s.seconds * 1e6))
        return rows

    rows = benchmark(run)
    table = format_table(
        ["tile", "loads/ALU (emergent)", "time (us)"],
        rows,
        title=f"Tiled IC GEMM {SHAPE.label()} — tile-space sweep",
        ndigits=2,
    )
    report("tiling_sweep", table)
    ratios = [r[1] for r in rows]
    # The emergent operand-reuse ratios bracket the aggregate model's
    # lambda = 0.45.
    assert min(ratios) < 0.45 < max(ratios) + 0.2


def test_tiling_matches_aggregate_model(machine, pm, report, benchmark):
    tile, stats = benchmark(autotune, SHAPE, machine)
    pm_local = PerformanceModel(machine, include_launch_overhead=False)
    aggregate = pm_local.time_gemm(SHAPE, IC).seconds
    report(
        "tiling_vs_aggregate",
        f"autotuned tile {tile.label()}: {stats.seconds * 1e6:.1f}us vs "
        f"aggregate-model IC GEMM {aggregate * 1e6:.1f}us "
        f"(ratio {stats.seconds / aggregate:.2f})",
    )
    assert stats.seconds == pytest.approx(aggregate, rel=0.35)


def test_tiling_packed_speedup(machine, report, benchmark):
    _, base = autotune(SHAPE, machine)
    tile, packed = benchmark(autotune, SHAPE, machine, pack_lanes=2)
    speedup = base.seconds / packed.seconds
    report(
        "tiling_packed",
        f"packed (2-lane) autotuned tile {tile.label()}: "
        f"{speedup:.2f}x over the unpacked winner "
        "(grid shrinks by the packing factor; staging does not)",
    )
    assert 1.4 < speedup <= 2.05
