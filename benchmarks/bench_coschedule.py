"""Inter-kernel co-scheduling (original Tacker) vs sequential execution.

Sec. 4.1 notes the paper adapted Tacker from its original *two distinct
kernels* form into a single fused kernel for fair comparison.  This
bench evaluates the original form on the simulated Orin: pairs of
kernels run sequentially and co-scheduled, across complementary and
colliding pipe mixes.  Complementary pairs (Tensor+INT, INT+FP) gain;
same-pipe pairs do not — the resource-contention picture Tacker's QoS
model exists to manage.
"""

from __future__ import annotations

import pytest

from repro.fusion import FC, IC, TC, co_schedule
from repro.packing import policy_for_bitwidth
from repro.perfmodel import ELEMENTWISE_KERNELS, CostParams, GemmShape
from repro.perfmodel.warpsets import elementwise_launch, gemm_launch
from repro.utils.tables import format_table


def _pairs(machine):
    pol = policy_for_bitwidth(8)
    params = CostParams(target_sim_instructions=12_000)
    shape = GemmShape(512, 1024, 512)
    tc = gemm_launch(shape, TC, machine, pol, params, 4.0)
    ic = gemm_launch(shape, IC, machine, pol, params, 0.0)
    fc = gemm_launch(shape, FC, machine, pol, params, 0.0)
    sm = elementwise_launch(
        ELEMENTWISE_KERNELS["softmax"], 1_500_000, IC, machine, pol, params
    )
    ge = elementwise_launch(
        ELEMENTWISE_KERNELS["gelu"], 1_500_000, IC, machine, pol, params
    )
    return {
        "TC GEMM + IC softmax (complementary)": (tc, sm),
        "IC GEMM + FC GEMM (complementary)": (ic, fc),
        "IC softmax + IC gelu (colliding)": (sm, ge),
        "IC GEMM + IC GEMM (colliding)": (ic, ic),
    }


def test_coschedule_pairs(machine, report, benchmark):
    def run():
        return {
            name: co_schedule(machine, a, b).speedup
            for name, (a, b) in _pairs(machine).items()
        }

    speedups = benchmark(run)
    table = format_table(
        ["kernel pair", "co-scheduled speedup"],
        list(speedups.items()),
        title="Original Tacker — inter-kernel co-scheduling vs sequential",
    )
    report("coschedule", table)

    comp = [v for k, v in speedups.items() if "complementary" in k]
    coll = [v for k, v in speedups.items() if "colliding" in k]
    assert min(comp) > 1.1
    assert max(coll) == pytest.approx(1.0, abs=0.08)
    assert min(comp) > max(coll)
