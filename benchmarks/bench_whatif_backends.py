"""Cross-backend what-if: where do the paper's wins travel?

ISSUE 10's design-space explorer, run as a benchmark: the bitwidth x
strategy x backend sweep goes through the parallel sweep runner with
the content-addressed timing cache as the shared artifact store, and
the per-backend / cross-backend Pareto frontiers (throughput, energy,
arithmetic density) land in ``summary.json``.

Shape assertions, not absolute numbers (the exotic backends are
speculative — see docs/BACKENDS.md):

* every backend contributes a non-empty Pareto frontier;
* 4-bit packing (4 lanes) never loses to 8-bit (2 lanes) for VitBit on
  any backend — more lanes per register is the paper's whole lever;
* the register-file-compression Orin variant (``orin-rfc``) tracks the
  stock Orin closely: storage-side compression changes residency, not
  operand throughput (Sec. 2.2's distinction, now cross-checkable).
"""

from __future__ import annotations

from repro.arch import backend_names
from repro.whatif import run_whatif

BITS = (4, 8)
STRATEGIES = ("TC", "VitBit")


def test_whatif_backend_sweep(report, benchmark):
    def run():
        return run_whatif(bits=BITS, strategies=STRATEGIES)

    rep = benchmark(run)
    doc = rep.summary()
    report(
        "whatif_backends",
        rep.render(),
        backends=list(rep.backends),
        global_pareto=[
            f"{p['backend']}/{p['bits']}b/{p['strategy']}"
            for p in doc["global_pareto"]
        ],
        best_throughput={
            b: round(
                max(p.throughput_inf_per_s for p in rep.backend_points(b)), 2
            )
            for b in rep.backends
        },
        sweep_wall_seconds=round(rep.sweep.wall_seconds, 4),
        cache_hit_rate=round(rep.sweep.hit_rate, 4),
    )

    assert rep.backends == backend_names()
    for b in rep.backends:
        assert rep.pareto(b), f"empty frontier on {b}"
    assert doc["global_pareto"]

    # More lanes per register never loses: 4-bit VitBit at least matches
    # 8-bit VitBit on every backend.
    for b in rep.backends:
        by_bits = {
            p.bits: p for p in rep.backend_points(b) if p.strategy == "VitBit"
        }
        assert by_bits[4].total_seconds <= by_bits[8].total_seconds * 1.001

    # Register-file compression is storage-side: orin-rfc's latency sits
    # within a few percent of stock Orin (occupancy, not throughput).
    orin = {(p.bits, p.strategy): p for p in rep.backend_points("orin-agx")}
    rfc = {(p.bits, p.strategy): p for p in rep.backend_points("orin-rfc")}
    for key, p in orin.items():
        assert abs(rfc[key].total_seconds - p.total_seconds) <= (
            0.10 * p.total_seconds
        )
