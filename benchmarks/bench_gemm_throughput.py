"""Packed-GEMM throughput per (bitwidth, backend), with a 10x floor.

Times the packed GEMM on the ViT-Base tile the paper evaluates
(M = N = 196 tokens, K = 768 hidden) for every registered backend that
is importable here, and reports multiply-accumulates per second into
``summary.json`` under ``factors.gemm_throughput``.

The CI ``perf-smoke`` job runs this file and fails the build if the
vectorized engine ever regresses below **10x the recorded seed
throughput** — the per-element Python loops this repo started from,
which priced this exact 8-bit chunked GEMM in ~331 ms (~89e6 MAC/s).
The baseline is a recorded constant, not re-measured, so the floor is
stable across machines; the current engine clears it by ~5x beyond the
demanded margin.
"""

from __future__ import annotations

import time

import numpy as np

from repro.packing import (
    available_backends,
    packed_gemm_unsigned,
    policy_for_bitwidth,
)
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

M, N, K = 196, 196, 768  # ViT-Base: tokens x tokens x hidden
BITS = (4, 8)
METHOD = "chunked"  # the hot path the seed baseline was measured on
REPEATS = 3

# Seed implementation (pre-vectorization): 8-bit chunked GEMM on this
# shape took ~331 ms => ~89.1e6 MAC/s.  See EXPERIMENTS.md history.
SEED_ELEMENTS_PER_S = 89.1e6
FLOOR = 10.0


def _throughput(a, b, policy, backend):
    """Best-of-N wall time -> multiply-accumulates per second."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = packed_gemm_unsigned(a, b, policy, method=METHOD, backend=backend)
        best = min(best, time.perf_counter() - t0)
    assert out.shape == (M, N)
    return M * N * K / best


def _sweep():
    rng = make_rng(2026)
    backends = available_backends()
    rows = []
    for bits in BITS:
        policy = policy_for_bitwidth(bits)
        a = rng.integers(0, policy.max_value + 1, size=(M, K), dtype=np.int64)
        b = rng.integers(0, policy.max_value + 1, size=(K, N), dtype=np.int64)
        for backend in backends:
            eps = _throughput(a, b, policy, backend)
            rows.append((bits, backend, eps))
    return rows


def test_gemm_throughput_floor(report, benchmark):
    rows = benchmark(_sweep)
    table = format_table(
        ["bits", "backend", "MAC/s (1e6)", "vs seed"],
        [
            (bits, backend, eps / 1e6, eps / SEED_ELEMENTS_PER_S)
            for bits, backend, eps in rows
        ],
        title=f"Packed GEMM throughput — {M}x{N}x{K} ({METHOD})",
        ndigits=1,
    )
    report(
        "gemm_throughput",
        table,
        shape=[M, N, K],
        method=METHOD,
        seed_elements_per_s=SEED_ELEMENTS_PER_S,
        elements_per_s={
            f"int{bits}/{backend}": round(eps) for bits, backend, eps in rows
        },
        speedup_vs_seed={
            f"int{bits}/{backend}": round(eps / SEED_ELEMENTS_PER_S, 1)
            for bits, backend, eps in rows
        },
    )
    # Every importable backend must clear the floor at every bitwidth —
    # a regression in any one of them is a build failure.
    for bits, backend, eps in rows:
        assert eps >= FLOOR * SEED_ELEMENTS_PER_S, (
            f"int{bits}/{backend}: {eps:.3e} MAC/s is below "
            f"{FLOOR}x the seed ({SEED_ELEMENTS_PER_S:.3e})"
        )


def test_backends_bit_identical_on_vit_tile(report, benchmark):
    """The throughput table compares like with like: every backend must
    produce the exact same product on the measured tile."""
    rng = make_rng(2027)
    policy = policy_for_bitwidth(8)
    a = rng.integers(0, policy.max_value + 1, size=(M, K), dtype=np.int64)
    b = rng.integers(0, policy.max_value + 1, size=(K, N), dtype=np.int64)
    outs = benchmark(
        lambda: {
            backend: packed_gemm_unsigned(
                a, b, policy, method=METHOD, backend=backend
            )
            for backend in available_backends()
        }
    )
    want = a @ b
    for backend, out in outs.items():
        np.testing.assert_array_equal(out, want, err_msg=backend)
