"""Fig. 3: the packing policy across operand bitwidths.

Regenerates the figure's table — values per register, field widths,
output-bit budget — for every bitwidth from 1 to 16, plus the
bit-level register utilization packing buys (Sec. 3.2), and verifies
the packed GEMM is exact at each point.
"""

from __future__ import annotations

import numpy as np

from repro.packing import (
    packed_gemm_unsigned,
    policy_for_bitwidth,
    reference_gemm,
    safe_accumulation_depth,
)
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

PAPER_LANES = {**{b: 1 for b in range(9, 17)}, 8: 2, 7: 2, 6: 2, 5: 3,
               4: 4, 3: 4, 2: 4, 1: 4}


def _policy_rows():
    rows = []
    for bits in range(1, 17):
        pol = policy_for_bitwidth(bits)
        depth = safe_accumulation_depth(pol, max(1, bits - 1), bits)
        rows.append(
            (
                bits,
                pol.lanes,
                pol.field_bits,
                pol.product_bits if pol.lanes > 1 else 32,
                depth,
                pol.bit_utilization(),
            )
        )
    return rows


def test_fig3_policy_table(report, benchmark):
    rows = benchmark(_policy_rows)
    table = format_table(
        ["bitwidth", "values/reg", "field bits", "output bits",
         "safe acc depth", "bit utilization"],
        rows,
        title="Fig. 3 — VitBit packing policy (32-bit registers)",
    )
    report("fig3_policy", table)
    for bits, lanes, *_ in rows:
        assert lanes == PAPER_LANES[bits]


def test_fig3_policy_is_exact_everywhere(benchmark):
    """Every policy point supports an exact packed GEMM."""
    rng = make_rng(7)

    def run():
        for bits in range(1, 9):
            pol = policy_for_bitwidth(bits)
            hi = pol.max_value + 1
            a = rng.integers(0, hi, size=(5, 30))
            b = rng.integers(0, hi, size=(30, 11))
            assert np.array_equal(
                packed_gemm_unsigned(a, b, pol), reference_gemm(a, b)
            )

    benchmark(run)
