"""Fig. 10: average IPC of ViT-Base layers, single pipe vs both pipes.

Paper: utilizing both INT and FP CUDA cores (with VitBit) yields a
~1.3x higher IPC than INT or FP cores alone.  We execute the
CUDA-core GEMM workload of one block under IC, FC and IC+FC(+packing)
in the issue-loop simulator and compare the measured IPC: a single
16-lane pipe caps arithmetic issue at one instruction per two cycles,
while alternating INT/FP warps keep both pipes busy.
"""

from __future__ import annotations

import pytest

from repro.fusion import FC, IC, IC_FC
from repro.fusion.strategies import Strategy
from repro.perfmodel import GemmShape
from repro.utils.tables import format_table
from repro.vit.workload import DEFAULT_BATCH

IC_FC_P = Strategy(
    name="VitBit (IC+FC+P)",
    uses_tensor=False,
    uses_int=True,
    uses_fp=True,
    packing=True,
    kernel_scope="C",
    description="both CUDA pipes with packing",
)
SHAPES = (
    GemmShape(2304, 197 * DEFAULT_BATCH, 768, name="qkv"),
    GemmShape(768, 197 * DEFAULT_BATCH, 768, name="proj"),
    GemmShape(3072, 197 * DEFAULT_BATCH, 768, name="fc1"),
    GemmShape(768, 197 * DEFAULT_BATCH, 3072, name="fc2"),
)


def _ipc_by_strategy(pm):
    out = {}
    for strat in (IC, FC, IC_FC, IC_FC_P):
        total_instr = 0.0
        total_cycle_weight = 0.0
        for shape in SHAPES:
            kt = pm.time_gemm(shape, strat)
            total_instr += kt.instructions
            total_cycle_weight += kt.seconds
        cycles = total_cycle_weight * pm.machine.clock_hz * pm.machine.sm_count
        out[strat.name] = total_instr / cycles
    return out


def test_fig10_ipc(pm, report, benchmark):
    ipc = benchmark(_ipc_by_strategy, pm)
    base = ipc["IC"]
    table = format_table(
        ["method", "IPC per SM", "vs IC"],
        [(k, v, v / base) for k, v in ipc.items()],
        title="Fig. 10 — average IPC on CUDA-core GEMM layers "
        "(paper: both pipes ~1.3x a single pipe)",
    )
    report("fig10_ipc", table)

    # Single-pipe methods are pipe-bound and equal; dual-pipe lifts IPC.
    assert ipc["FC"] == pytest.approx(ipc["IC"], rel=0.05)
    assert ipc["IC+FC"] / ipc["IC"] == pytest.approx(1.3, abs=0.12)
    # Packing lowers the instruction count, so its IPC gain over IC is
    # smaller than IC+FC's even though it is faster — the distinction
    # between Figs. 9 and 10.
    assert ipc["VitBit (IC+FC+P)"] > ipc["IC"]


def test_fig10_utilization_story(pm, report, benchmark):
    """Sec. 4.2: 'the utilization rate of both INT and FP cores
    increased dramatically' — check pipe utilizations directly."""
    from repro.sim.instruction import OpClass

    shape = SHAPES[1]
    solo, dual = benchmark(
        lambda: (pm.time_gemm(shape, IC), pm.time_gemm(shape, IC_FC_P))
    )
    rows = [
        ("IC", solo.pipe_utilization.get(OpClass.INT, 0.0),
         solo.pipe_utilization.get(OpClass.FP, 0.0)),
        ("VitBit", dual.pipe_utilization.get(OpClass.INT, 0.0),
         dual.pipe_utilization.get(OpClass.FP, 0.0)),
    ]
    report(
        "fig10_utilization",
        "\n".join(
            f"{name:8s} INT util {i:.2f}  FP util {f:.2f}" for name, i, f in rows
        ),
    )
    assert rows[1][2] > 0.3  # FP pipe went from dark to busy
    assert rows[0][2] == 0.0
