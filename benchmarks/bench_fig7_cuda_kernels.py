"""Fig. 7: CUDA-core kernel speedups (non-Linear kernels of the block).

Paper (normalized to the IC baseline): IC+FC averages 1.05x, VitBit
averages 1.14x with a 1.18x maximum.  The kernels are the attention
block's Softmax, GeLU, LayerNorm, Dropout (plus residual/requantize).
"""

from __future__ import annotations

import pytest

from repro.fusion import FC, IC, IC_FC, VITBIT
from repro.utils.tables import format_table
from repro.vit.config import ViTConfig
from repro.vit.workload import DEFAULT_BATCH

CFG = ViTConfig.vit_base()
SIZES = {
    "softmax": CFG.heads * CFG.tokens * CFG.tokens * DEFAULT_BATCH,
    "gelu": CFG.mlp_dim * CFG.tokens * DEFAULT_BATCH,
    "layernorm": CFG.hidden * CFG.tokens * DEFAULT_BATCH,
    "dropout": CFG.hidden * CFG.tokens * DEFAULT_BATCH,
    "residual": CFG.hidden * CFG.tokens * DEFAULT_BATCH,
    "requantize": CFG.hidden * CFG.tokens * DEFAULT_BATCH,
}


def _speedups(pm):
    rows = {}
    for kernel, n in SIZES.items():
        t_ic = pm.time_elementwise(kernel, n, IC).seconds
        rows[kernel] = {
            "FC": t_ic / pm.time_elementwise(kernel, n, FC).seconds,
            "IC+FC": t_ic / pm.time_elementwise(kernel, n, IC_FC).seconds,
            "VitBit": t_ic / pm.time_elementwise(kernel, n, VITBIT).seconds,
        }
    return rows


def test_fig7_cuda_kernel_speedups(pm, report, benchmark):
    rows = benchmark(_speedups, pm)
    vitbit = [r["VitBit"] for r in rows.values()]
    icfc = [r["IC+FC"] for r in rows.values()]
    avg_vb = sum(vitbit) / len(vitbit)
    avg_icfc = sum(icfc) / len(icfc)
    table = format_table(
        ["kernel", "FC", "IC+FC", "VitBit"],
        [(k, r["FC"], r["IC+FC"], r["VitBit"]) for k, r in rows.items()]
        + [("average", sum(r["FC"] for r in rows.values()) / len(rows),
            avg_icfc, avg_vb)],
        title="Fig. 7 — CUDA-core kernels (speedup vs IC baseline; "
        "paper: IC+FC avg 1.05, VitBit avg 1.14 / max 1.18)",
    )
    report("fig7_cuda_kernels", table)

    # Ordering per kernel: VitBit >= IC+FC >= ~1.0.
    for kernel, r in rows.items():
        assert r["VitBit"] > r["IC+FC"] >= 0.99, kernel
    assert avg_vb == pytest.approx(1.14, abs=0.05)
    assert avg_icfc == pytest.approx(1.05, abs=0.06)
    assert max(vitbit) == pytest.approx(1.18, abs=0.06)
