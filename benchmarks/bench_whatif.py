"""Architectural what-ifs: where does VitBit stop paying?

The paper closes by claiming the approach "sets a foundation for future
GPU designs".  With the machine as a dataclass, the question is
directly computable: sweep the architecture and watch the VitBit
speedup respond.

* **Beefier Tensor cores** (discrete-GPU-class MMA throughput): the
  CUDA cores' relative contribution shrinks, the balanced ratio m
  grows, and the fused win decays toward 1 — VitBit is specifically an
  *embedded*-GPU technique, as the title says.
* **More DRAM bandwidth**: the memory-bound elementwise kernels speed
  up for every method, concentrating inference time in the GEMMs where
  VitBit is strongest — the end-to-end win grows.
* **Less DRAM bandwidth**: everything converges to the memory roofline
  and all techniques collapse toward 1x.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.fusion import TC, VITBIT
from repro.perfmodel import GemmShape, PerformanceModel
from repro.runner import run_sweep
from repro.sim.instruction import default_timings
from repro.utils.tables import format_table
from repro.vit import time_inference


def _whatif_point(m):
    """Price one architectural variant (module-level: pickled to
    sweep workers)."""
    pm = PerformanceModel(m)
    base = time_inference(pm, TC).total_seconds
    vb = time_inference(pm, VITBIT).total_seconds
    mr = pm.determine_tensor_cuda_ratio(GemmShape(768, 1576, 768), VITBIT)
    return (base * 1e3, base / vb, mr)


def _variant_machines(machine):
    sm_fat_tc = replace(
        machine.sm,
        tensor_core=replace(
            machine.sm.tensor_core,
            fp16_macs_per_cycle=machine.sm.tensor_core.fp16_macs_per_cycle * 4,
        ),
    )
    return {
        "Jetson AGX Orin (paper)": machine,
        "4x Tensor cores (discrete-class)": replace(machine, sm=sm_fat_tc),
        "2x DRAM bandwidth": replace(
            machine, dram_bandwidth_gbps=machine.dram_bandwidth_gbps * 2
        ),
        "1/2 DRAM bandwidth": replace(
            machine, dram_bandwidth_gbps=machine.dram_bandwidth_gbps / 2
        ),
    }


def test_whatif_architecture_sweep(machine, report, benchmark):
    variants = _variant_machines(machine)

    def run():
        rep = run_sweep(
            _whatif_point,
            list(variants.values()),
            labels=list(variants),
            label="what-if architecture sweep",
        )
        return dict(zip(variants, rep.values)), rep

    results, rep = benchmark(run)
    table = format_table(
        ["machine", "TC inference (ms)", "VitBit speedup", "ratio m"],
        [(k, v[0], v[1], v[2]) for k, v in results.items()],
        title="What-if — VitBit across architectural variants",
    )
    report(
        "whatif_architecture",
        table,
        speedups={k: round(v[1], 4) for k, v in results.items()},
        sweep_wall_seconds=round(rep.wall_seconds, 4),
        cache_hit_rate=round(rep.hit_rate, 4),
    )

    paper = results["Jetson AGX Orin (paper)"]
    fat_tc = results["4x Tensor cores (discrete-class)"]
    # Beefier Tensor cores shrink the win and raise m: the technique is
    # embedded-GPU-specific.
    assert fat_tc[1] < paper[1]
    assert fat_tc[2] > paper[2]
    # More bandwidth concentrates time in GEMMs -> bigger overall win.
    assert results["2x DRAM bandwidth"][1] >= paper[1] - 0.01
    # Bandwidth starvation collapses every technique toward the roofline.
    assert results["1/2 DRAM bandwidth"][1] < paper[1]


def test_whatif_tc_derating_consistency(machine, benchmark):
    """The timings derived from a variant spec must track its Tensor
    throughput (guard against stale caching in default_timings)."""
    from repro.sim.instruction import OpClass

    base = benchmark(default_timings, machine.sm)
    fat = default_timings(
        replace(
            machine.sm,
            tensor_core=replace(
                machine.sm.tensor_core,
                fp16_macs_per_cycle=machine.sm.tensor_core.fp16_macs_per_cycle * 4,
            ),
        )
    )
    assert fat[OpClass.TENSOR].initiation_interval == pytest.approx(
        base[OpClass.TENSOR].initiation_interval / 4, abs=1
    )
