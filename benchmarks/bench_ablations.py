"""Ablations over VitBit's design choices (DESIGN.md's ablation index).

These quantify the decisions the paper makes implicitly:

* **spill tax** — Fig. 3's fields leave int8 pairs 0 guard bits, so a
  real packed GEMM spills its packed accumulator every ``safe_depth``
  MACs; the paper's accounting idealizes this away.
* **sign-split tax** — zero-padded SWAR needs non-negative lanes;
  signed weights cost a second unsigned pass.
* **warp interleaving** — Sec. 3.3 alternates INT/FP warps; contiguous
  role blocks lose most of the dual-issue benefit.
* **packing-factor sweep** — lower bitwidths pack 3-4 lanes (Fig. 3)
  and buy proportionally more CUDA-core GEMM throughput.
* **m sweep** — execution time across Tensor:CUDA ratios, showing the
  measured-time rule's m = 4 sits at the optimum for VitBit.
"""

from __future__ import annotations


import pytest

from repro.fusion import IC, TC, VITBIT
from repro.fusion.strategies import Strategy
from repro.perfmodel import CostParams, GemmShape, PerformanceModel
from repro.packing import policy_for_bitwidth
from repro.utils.tables import format_table
from repro.vit.workload import DEFAULT_BATCH

SHAPE = GemmShape(768, 197 * DEFAULT_BATCH, 768, name="proj")
CUDA_PACKED = Strategy(
    name="IC+FC+P",
    uses_tensor=False,
    uses_int=True,
    uses_fp=True,
    packing=True,
    kernel_scope="C",
    description="packed CUDA-only GEMM",
)


def test_ablation_spill_and_sign_split(machine, report, benchmark):
    def run():
        rows = []
        for label, params in (
            ("idealized (paper accounting)", CostParams()),
            ("+ accumulator spills", CostParams(count_spills=True)),
            ("+ sign-split passes", CostParams(count_sign_split=True)),
            ("+ both", CostParams(count_spills=True, count_sign_split=True)),
        ):
            pm = PerformanceModel(machine, params=params,
                                  include_launch_overhead=False)
            t = pm.time_gemm(SHAPE, CUDA_PACKED).seconds
            base = pm.time_gemm(SHAPE, IC).seconds
            rows.append((label, base / t))
        return rows

    rows = benchmark(run)
    table = format_table(
        ["accounting", "packed-GEMM speedup vs IC"],
        rows,
        title="Ablation — overheads the paper's packing accounting omits",
    )
    report("ablation_overheads", table)
    ideal = rows[0][1]
    both = rows[3][1]
    assert ideal > rows[1][1] > both  # each tax costs real speedup
    # Honest finding (EXPERIMENTS.md): at int8 the two taxes *combined*
    # can erase the packing win entirely — the technique relies on the
    # paper's operand layout (unsigned activations, spill-free
    # accumulation via requantized epilogues).  Individually, each tax
    # still leaves packing ahead.
    assert rows[1][1] > 1.0 and rows[2][1] > 1.0
    assert both < ideal / 1.5


def test_ablation_warp_interleaving(machine, report, benchmark):
    def run():
        out = {}
        for label, alternate in (("alternating (paper)", True),
                                 ("contiguous roles", False)):
            pm = PerformanceModel(
                machine,
                params=CostParams(alternate_warps=alternate),
                include_launch_overhead=False,
            )
            out[label] = pm.time_gemm(SHAPE, CUDA_PACKED).seconds
        return out

    times = benchmark(run)
    table = format_table(
        ["warp layout", "GEMM time (us)"],
        [(k, v * 1e6) for k, v in times.items()],
        title="Ablation — Sec. 3.3 warp-level INT/FP interleaving",
        ndigits=1,
    )
    report("ablation_interleave", table)
    assert times["alternating (paper)"] < times["contiguous roles"]


@pytest.mark.parametrize("bits", [4, 5, 6, 8])
def test_ablation_packing_factor_sweep(machine, bits, report, benchmark):
    """Fig. 3 extension: deeper packing buys more CUDA GEMM speedup."""
    policy = policy_for_bitwidth(bits)

    def run():
        pm = PerformanceModel(machine, policy, include_launch_overhead=False)
        return (
            pm.time_gemm(SHAPE, IC).seconds,
            pm.time_gemm(SHAPE, CUDA_PACKED).seconds,
        )

    t_ic, t_p = benchmark(run)
    speedup = t_ic / t_p
    report(
        f"ablation_pack_{bits}bit",
        f"{bits}-bit operands: {policy.lanes} lanes -> packed CUDA GEMM "
        f"{speedup:.3f}x vs IC",
    )
    assert speedup > 1.0
    if bits <= 4:
        # 4 lanes should clearly beat the 2-lane int8 configuration.
        pm8 = PerformanceModel(
            machine, policy_for_bitwidth(8), include_launch_overhead=False
        )
        s8 = pm8.time_gemm(SHAPE, IC).seconds / pm8.time_gemm(
            SHAPE, CUDA_PACKED
        ).seconds
        assert speedup > s8


def test_ablation_m_sweep(pm, report, benchmark):
    """Execution time across the Tensor:CUDA ratio m (VitBit fused)."""

    def run():
        t_tc = pm.time_gemm(SHAPE, TC).seconds
        return {
            m: t_tc / pm.time_gemm(SHAPE, VITBIT, tensor_cuda_ratio=m).seconds
            for m in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0)
        }

    speedups = benchmark(run)
    table = format_table(
        ["m (Tensor:CUDA)", "VitBit speedup vs TC"],
        list(speedups.items()),
        title="Ablation — Tensor:CUDA assignment ratio sweep "
        "(the measured-time rule picks m = 4)",
    )
    report("ablation_m_sweep", table)
    best_m = max(speedups, key=speedups.get)
    assert best_m == 4.0
    assert speedups[1.0] < speedups[4.0]
    assert speedups[8.0] < speedups[4.0]
