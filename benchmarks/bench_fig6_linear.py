"""Fig. 6: Linear-kernel (GEMM) speedup of VitBit over the TC baseline.

Paper: average 1.28x, maximum 1.35x across the ViT-Base Linear kernels.
We price the four Linear shapes (QKV, projection, MLP fc1, MLP fc2)
plus the patch embedding under TC and VitBit.
"""

from __future__ import annotations

import pytest

from repro.fusion import TC, VITBIT
from repro.perfmodel import GemmShape
from repro.utils.tables import format_table
from repro.vit.workload import DEFAULT_BATCH

N = 197 * DEFAULT_BATCH
LINEAR_SHAPES = (
    GemmShape(768, 196 * DEFAULT_BATCH, 768, name="patch_embed"),
    GemmShape(2304, N, 768, name="qkv"),
    GemmShape(768, N, 768, name="proj"),
    GemmShape(3072, N, 768, name="fc1"),
    GemmShape(768, N, 3072, name="fc2"),
)


def _speedups(pm):
    out = {}
    for shape in LINEAR_SHAPES:
        t_tc = pm.time_gemm(shape, TC).seconds
        t_vb = pm.time_gemm(shape, VITBIT).seconds
        out[shape.name] = t_tc / t_vb
    return out


def test_fig6_linear_kernel_speedups(pm, report, benchmark):
    speedups = benchmark(_speedups, pm)
    avg = sum(speedups.values()) / len(speedups)
    peak = max(speedups.values())
    rows = [(k, v) for k, v in speedups.items()]
    rows.append(("average (paper 1.28)", avg))
    rows.append(("maximum (paper 1.35)", peak))
    table = format_table(
        ["Linear kernel", "VitBit speedup vs TC"],
        rows,
        title="Fig. 6 — Linear kernels of ViT-Base",
    )
    report("fig6_linear", table)

    for name, s in speedups.items():
        assert s > 1.1, f"{name}: VitBit must clearly beat TC on Linear kernels"
    assert avg == pytest.approx(1.28, abs=0.08)
    assert peak <= 1.45  # same regime as the paper's 1.35 ceiling


def test_fig6_all_linear_kernels_balanced(pm, benchmark):
    """The 4:1 split holds across every Linear shape (the m rule is
    shape-stable, as the paper assumes when fixing m once)."""
    ms = benchmark(
        lambda: [
            pm.determine_tensor_cuda_ratio(shape, VITBIT)
            for shape in LINEAR_SHAPES
        ]
    )
    assert all(m == 4 for m in ms)
