"""Micro-benchmarks of the packing engine itself (pytest-benchmark).

These time the actual NumPy implementations — pack/unpack round trips,
SWAR multiplies, the packed GEMM in both evaluation modes — so
regressions in the functional layer show up in ``--benchmark-only``
runs alongside the figure reproductions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.packing import (
    Packer,
    packed_gemm,
    packed_gemm_unsigned,
    packed_scalar_mul,
    policy_for_bitwidth,
)
from repro.utils.rng import make_rng

POL8 = policy_for_bitwidth(8)


@pytest.fixture(scope="module")
def data():
    rng = make_rng(11)
    return {
        "values": rng.integers(0, 256, size=(512, 1024)),
        "a": rng.integers(-127, 128, size=(256, 256)),
        "b_unsigned": rng.integers(0, 256, size=(256, 128)),
        "scalar": rng.integers(0, 128, size=(512, 1)),
    }


def test_micro_pack(benchmark, data):
    packer = Packer(POL8)
    out = benchmark(packer.pack, data["values"])
    assert out.shape == (512, 512)


def test_micro_unpack(benchmark, data):
    packer = Packer(POL8)
    packed = packer.pack(data["values"])
    out = benchmark(packer.unpack, packed, 1024)
    assert np.array_equal(out, data["values"])


def test_micro_packed_scalar_mul(benchmark, data):
    packer = Packer(POL8)
    packed = packer.pack(np.minimum(data["values"], 255))
    out = benchmark(
        packed_scalar_mul, data["scalar"], packed, POL8, strict=False
    )
    assert out.dtype == np.uint32


def test_micro_packed_gemm_chunked(benchmark, data):
    a = np.abs(data["a"])
    out = benchmark(
        packed_gemm_unsigned, a, data["b_unsigned"], POL8, method="chunked"
    )
    assert out.shape == (256, 128)


def test_micro_packed_gemm_lane(benchmark, data):
    a = np.abs(data["a"])
    out = benchmark(
        packed_gemm_unsigned, a, data["b_unsigned"], POL8, method="lane"
    )
    assert out.shape == (256, 128)


def test_micro_packed_gemm_signed(benchmark, data):
    out = benchmark(
        packed_gemm,
        data["a"],
        data["b_unsigned"] - 128,
        POL8,
        b_zero_point=128,
        method="lane",
    )
    assert out.shape == (256, 128)
