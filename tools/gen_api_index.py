"""Generate docs/API.md: an index of the public API from docstrings.

Walks every ``repro`` module, collects the names it exports via
``__all__``, and emits one markdown section per module with each
symbol's signature and first docstring line.  Run after API changes:

    python tools/gen_api_index.py

``tests/test_api_index.py`` regenerates the index in memory and
compares it to the committed file, so the documentation cannot drift
from the code.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil
import sys

import repro

OUT = pathlib.Path(__file__).resolve().parents[1] / "docs" / "API.md"


def _first_line(obj: object) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else "(undocumented)"


def _signature(obj: object) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def iter_modules() -> list[str]:
    """All repro modules, sorted, that declare a public API."""
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        names.append(info.name)
    return sorted(names)


def render() -> str:
    lines = [
        "# API index",
        "",
        "One line per public symbol, generated from docstrings by",
        "`tools/gen_api_index.py` — regenerate after API changes",
        "(`tests/test_api_index.py` enforces freshness).",
        "",
        "The static-analysis layer (`repro.analysis`, the `analyze` CLI",
        "command, and the `VB1xx`/`VB2xx`/`VB3xx` diagnostic codes) is",
        "documented separately in [ANALYSIS.md](ANALYSIS.md).",
        "",
    ]
    for name in iter_modules():
        module = importlib.import_module(name)
        public = getattr(module, "__all__", None)
        if not public:
            continue
        lines.append(f"## `{name}`")
        mod_doc = _first_line(module)
        lines.append("")
        lines.append(mod_doc)
        lines.append("")
        for symbol in public:
            obj = getattr(module, symbol, None)
            if obj is None:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                sig = _signature(obj)
                kind = "class" if inspect.isclass(obj) else "def"
                lines.append(f"- **`{kind} {symbol}{sig}`** — {_first_line(obj)}")
            else:
                lines.append(f"- **`{symbol}`** — constant")
        lines.append("")
    return "\n".join(lines) + "\n"


def main() -> int:
    OUT.write_text(render())
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
