"""Regenerate benchmarks/golden.json — the pinned model outputs.

The benchmark assertions check the *paper's* shape with loose
tolerances; the goldens additionally pin *this model's* headline
numbers tightly (±2%), so an accidental change to a calibration
constant or simulator rule cannot drift the reproduction silently.
Regenerate deliberately after an intentional model change:

    python tools/gen_goldens.py
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.arch import backend_names, jetson_orin_agx, resolve_backend
from repro.fusion import FC, IC, IC_FC, TACKER, TC, TC_IC_FC, VITBIT
from repro.fusion.strategies import Strategy
from repro.packing import policy_for_bitwidth
from repro.perfmodel import GemmShape, PerformanceModel
from repro.vit import time_inference

OUT = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "golden.json"


def compute() -> dict:
    """The pinned series (all dimensionless ratios)."""
    machine = jetson_orin_agx()
    pm = PerformanceModel(machine)
    pm_raw = PerformanceModel(machine, include_launch_overhead=False)
    shape = GemmShape(768, 1576, 768, name="proj")
    packed = Strategy("IC+FC+P", False, True, True, True, "C", "probe")

    base_inf = time_inference(pm, TC).total_seconds
    fig5 = {
        s.name: round(base_inf / time_inference(pm, s).total_seconds, 4)
        for s in (TACKER, TC_IC_FC, VITBIT)
    }

    t_tc = pm_raw.time_gemm(shape, TC).seconds
    study = {
        s.name: round(pm_raw.time_gemm(shape, s).seconds / t_tc, 4)
        for s in (IC, FC, IC_FC, packed)
    }

    fig6 = round(t_tc / pm_raw.time_gemm(shape, VITBIT).seconds, 4)

    n = 768 * 1576
    t_ic = pm.time_elementwise("gelu", n, IC).seconds
    fig7_gelu = round(t_ic / pm.time_elementwise("gelu", n, VITBIT).seconds, 4)

    return {
        "fig5_speedups": fig5,
        "initial_study_x_tc": study,
        "fig6_proj_speedup": fig6,
        "fig7_gelu_speedup": fig7_gelu,
        "m_rule": pm_raw.determine_tensor_cuda_ratio(shape, packed),
        "backend_rows": backend_rows(),
    }


def backend_rows() -> dict:
    """One pinned (bits=8, VitBit) reference row per registered backend.

    Pins both the absolute latency (ms) and the dimensionless speedup
    over TC on the same backend, so a change to any backend spec or to
    the backend-generic perfmodel path must be deliberate.
    """
    rows = {}
    for name in backend_names():
        pm = PerformanceModel(
            resolve_backend(name),
            policy=policy_for_bitwidth(8),
            clamp_ratio=True,
        )
        t_tc = time_inference(pm, TC).total_seconds
        t_vb = time_inference(pm, VITBIT).total_seconds
        rows[name] = {
            "bits": 8,
            "strategy": "VitBit",
            "latency_ms": round(t_vb * 1e3, 4),
            "speedup_vs_tc": round(t_tc / t_vb, 4),
        }
    return rows


def main() -> int:
    OUT.write_text(json.dumps(compute(), indent=2) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
