"""Legacy entry point so `pip install -e . --no-build-isolation` works on
environments without the `wheel` package (offline evaluation boxes)."""

from setuptools import setup

setup()
